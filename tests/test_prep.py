"""Tests for the offline preparation: orderings, analysis, prepare()."""

import numpy as np
import pytest

from repro.prep.analysis import (
    choose_best_ordering,
    compute_drop_curve,
    droppable_positions,
    reliable_bytes,
    virtual_levels,
)
from repro.prep.prepare import prepare
from repro.prep.ranking import (
    Ordering,
    build_order,
    original_order,
    qoe_rank_order,
    reference_rank_order,
    unreferenced_tail_order,
    validate_order,
)
from repro.qoe.model import decode_segment, pristine_score


class TestOrderings:
    @pytest.mark.parametrize("ordering", list(Ordering))
    def test_all_orderings_are_permutations(self, segment, ordering):
        order = build_order(segment.frames, ordering)
        validate_order(segment.frames, order)

    def test_original_is_display_order(self, segment):
        order = original_order(segment.frames)
        assert order == list(range(1, len(segment.frames)))

    def test_unreferenced_tail_groups(self, segment):
        order = unreferenced_tail_order(segment.frames)
        referenced = set(segment.frames.referenced_indices())
        n_ref = sum(1 for idx in order if idx in referenced)
        head, tail = order[:n_ref], order[n_ref:]
        assert all(idx in referenced for idx in head)
        assert all(idx not in referenced for idx in tail)

    def test_reference_rank_puts_influential_first(self, segment):
        order = reference_rank_order(segment.frames)
        influence = segment.frames.transitive_reference_weight()
        values = [influence[idx] for idx in order]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_qoe_rank_tail_is_cheap(self, segment):
        """The tail of the QoE ranking should be cheaper to drop than the
        head, as measured by the actual decode model."""
        order = qoe_rank_order(segment.frames)
        head_drop = decode_segment(segment, dropped=order[:5]).score
        tail_drop = decode_segment(segment, dropped=order[-5:]).score
        assert tail_drop > head_drop

    def test_validate_rejects_partial_order(self, segment):
        with pytest.raises(ValueError):
            validate_order(segment.frames, [1, 2, 3])

    def test_validate_rejects_duplicates(self, segment):
        n = len(segment.frames)
        order = list(range(1, n))
        order[0] = order[1]
        with pytest.raises(ValueError):
            validate_order(segment.frames, order)


class TestDropCurve:
    def test_points_monotone(self, segment):
        curve = compute_drop_curve(segment, Ordering.QOE_RANK)
        drops = [p.dropped for p in curve.points]
        scores = [p.score for p in curve.points]
        sizes = [p.bytes_needed for p in curve.points]
        assert drops == sorted(drops)
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))

    def test_zero_drop_point_is_full_segment(self, segment):
        curve = compute_drop_curve(segment, Ordering.ORIGINAL)
        first = curve.points[0]
        assert first.dropped == 0
        assert first.bytes_needed == segment.total_bytes
        assert first.score == pytest.approx(pristine_score(segment))

    def test_tolerance_bounds(self, segment):
        curve = compute_drop_curve(segment, Ordering.QOE_RANK)
        assert 0.0 <= curve.tolerance(0.99) <= 1.0
        assert curve.tolerance(-1.0) == pytest.approx(
            len(curve.order) / len(segment.frames)
        )
        assert curve.tolerance(1.1) == 0.0

    def test_rank_beats_original_order(self, tiny_video):
        """The QoE ranking tolerates at least as many drops as the naive
        decode order (the §4.1 premise)."""
        wins, ties, losses = 0, 0, 0
        for index in range(tiny_video.num_segments):
            seg = tiny_video.segment(12, index)
            ranked = compute_drop_curve(seg, Ordering.QOE_RANK).tolerance(0.99)
            naive = compute_drop_curve(seg, Ordering.ORIGINAL).tolerance(0.99)
            if ranked > naive:
                wins += 1
            elif ranked == naive:
                ties += 1
            else:
                losses += 1
        assert wins + ties > losses
        assert losses <= 1

    def test_bytes_for_score(self, segment):
        curve = compute_drop_curve(segment, Ordering.QOE_RANK)
        needed = curve.bytes_for_score(0.99)
        assert needed is not None
        assert needed <= segment.total_bytes
        assert curve.bytes_for_score(2.0) is None

    def test_point_for_bytes(self, segment):
        curve = compute_drop_curve(segment, Ordering.QOE_RANK)
        full = curve.point_for_bytes(segment.total_bytes)
        assert full.dropped == 0
        tiny = curve.point_for_bytes(0)
        assert tiny.dropped == len(curve.order)

    def test_score_for_bytes_monotone(self, segment):
        curve = compute_drop_curve(segment, Ordering.QOE_RANK)
        budgets = np.linspace(0, segment.total_bytes, 10)
        scores = [curve.score_for_bytes(int(b)) for b in budgets]
        assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))


class TestReliableBytes:
    def test_covers_i_frame_and_headers(self, segment):
        expected = segment.frames.i_frame.size + sum(
            f.header_bytes for f in segment.frames if f.index != 0
        )
        assert reliable_bytes(segment) == expected

    def test_fraction_plausible(self, segment):
        frac = reliable_bytes(segment) / segment.total_bytes
        assert 0.08 < frac < 0.3  # I-frame ~15% of bytes plus headers


class TestBestOrdering:
    def test_choice_minimizes_bytes(self, segment):
        lower_bound = 0.99
        choice = choose_best_ordering(segment, lower_bound)
        for ordering in Ordering:
            curve = compute_drop_curve(segment, ordering)
            other = curve.bytes_for_score(lower_bound)
            if other is not None:
                assert choice.bytes_needed <= other

    def test_unreachable_bound_falls_back_to_full(self, segment):
        choice = choose_best_ordering(segment, 1.5)
        assert choice.bytes_needed == segment.total_bytes


class TestVirtualLevels:
    def test_thinning_and_bounds(self, segment):
        curve = compute_drop_curve(segment, Ordering.QOE_RANK)
        bound = 0.98
        points = virtual_levels(curve, bound, min_score_step=0.002)
        assert points, "at least the pristine point must survive"
        scores = [p.score for p in points]
        assert scores == sorted(scores, reverse=True)
        assert all(s >= bound for s in scores)
        for a, b in zip(scores, scores[1:]):
            assert a - b >= 0.002 - 1e-12

    def test_unreachable_bound_keeps_pristine(self, segment):
        curve = compute_drop_curve(segment, Ordering.QOE_RANK)
        points = virtual_levels(curve, 1.5)
        assert len(points) == 1
        assert points[0].dropped == 0


class TestDroppablePositions:
    def test_positions_within_segment(self, segment):
        positions = droppable_positions(segment, target_score=0.9)
        assert all(0 < p < len(segment.frames) for p in positions)

    def test_strict_target_shrinks_set(self, segment):
        loose = set(droppable_positions(segment, target_score=0.5))
        strict = set(droppable_positions(segment, target_score=0.999,
                                         max_score_delta=0.0005))
        assert strict <= loose


class TestPrepare:
    def test_structure(self, tiny_prepared):
        manifest = tiny_prepared.manifest
        assert manifest.num_levels == 13
        assert manifest.num_segments == 6
        for quality in range(13):
            for index in range(6):
                entry = manifest.entry(quality, index)
                assert entry.quality == quality
                assert entry.index == index
                assert entry.quality_points
                assert entry.reliable_size > 0
                assert entry.reliable_size < entry.total_bytes

    def test_media_ranges_contiguous(self, tiny_prepared):
        for rep in tiny_prepared.manifest.representations:
            offset = 0
            for entry in rep.segments:
                assert entry.media_range[0] == offset
                offset = entry.media_range[1]

    def test_quality_points_sorted_and_bounded(self, tiny_prepared):
        for rep in tiny_prepared.manifest.representations:
            for entry in rep.segments:
                scores = [p.score for p in entry.quality_points]
                assert scores == sorted(scores, reverse=True)
                sizes = [p.bytes for p in entry.quality_points]
                assert all(s <= entry.total_bytes for s in sizes)
                assert max(sizes) == entry.quality_points[0].bytes

    def test_virtual_levels_respect_lower_bound(self, tiny_prepared, tiny_video):
        """Every advertised point at Qn scores above pristine Qn-1."""
        for quality in range(1, 13):
            for index in range(tiny_video.num_segments):
                entry = tiny_prepared.manifest.entry(quality, index)
                bound = pristine_score(tiny_video.segment(quality - 1, index))
                for point in entry.quality_points:
                    assert point.score >= round(bound, 4) - 5e-4

    def test_unreliable_ranges_cover_all_payloads(self, tiny_prepared):
        entry = tiny_prepared.manifest.entry(12, 0)
        segment = tiny_prepared.video.segment(12, 0)
        total_payload = sum(
            f.payload_bytes for f in segment.frames if f.index != 0
        )
        covered = sum(e - s for s, e in entry.unreliable_ranges)
        assert covered == total_payload

    def test_frame_order_matches_unreliable_ranges(self, tiny_prepared):
        entry = tiny_prepared.manifest.entry(9, 2)
        assert len(entry.frame_order) == len(entry.unreliable_ranges)

    def test_prepared_segments_accessible(self, tiny_prepared):
        ps = tiny_prepared.prepared_segment(12, 0)
        assert ps.entry.quality == 12
        assert ps.curve.points
