"""Additional coverage: edge cases across modules that the main test
files do not reach."""

import dataclasses

import numpy as np
import pytest

from repro.abr.base import DecisionContext
from repro.abr.bola import Bola
from repro.abr.mpc import RobustMPC
from repro.network.clock import Clock
from repro.network.link import BottleneckLink
from repro.network.traces import constant_trace, tmobile_trace
from repro.qoe.model import DEFAULT_PARAMS, QoEParams, decode_segment
from repro.transport.connection import QuicConnection
from repro.transport.http import VoxelHttp


class TestQoEParams:
    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_PARAMS.freeze_cost = 0.5  # type: ignore[misc]

    def test_hashable_for_cache_keys(self):
        assert hash(QoEParams()) == hash(QoEParams())
        assert QoEParams() == QoEParams()
        assert QoEParams(freeze_cost=0.2) != QoEParams()

    def test_prepared_cache_keyed_by_params(self):
        from repro.prep.prepare import _PREPARED_CACHE, get_prepared

        a = get_prepared("bbb")
        b = get_prepared("bbb", params=QoEParams())
        assert a is b  # default params hash equal
        assert ("bbb", DEFAULT_PARAMS) in _PREPARED_CACHE


class TestDecodeEdgeCases:
    def test_drop_everything_but_i_frame(self, segment):
        result = decode_segment(
            segment, dropped=list(range(1, len(segment.frames)))
        )
        assert 0.0 <= result.score < 0.9
        assert result.delivered_frames == 1

    def test_empty_inputs_equal_pristine(self, segment):
        a = decode_segment(segment)
        b = decode_segment(segment, dropped=[], corruption={})
        assert a.score == b.score

    def test_negative_corruption_clipped(self, segment):
        a = decode_segment(segment, corruption={50: -0.5})
        b = decode_segment(segment)
        assert a.score == pytest.approx(b.score)


class TestBolaParameterDerivation:
    def test_v_and_gp_relationship(self, tiny_prepared):
        """V*(v_max+gp) == virtual target and V*gp == reserve."""
        bola = Bola()
        bola.setup(tiny_prepared.manifest, 8.0)
        manifest = tiny_prepared.manifest
        entries = [manifest.entry(q, 0) for q in range(13)]
        ctx = DecisionContext(
            segment_index=0, buffer_level_s=4.0, buffer_capacity_s=8.0,
            throughput_bps=5e6, last_quality=3, manifest=manifest,
            entries=entries, segment_duration=4.0, voxel_capable=False,
        )
        options = bola.candidates(ctx)
        v_param, gp, target = bola._parameters(options, 4.0)
        v_max = max(o.utility for o in options)
        assert v_param * (v_max + gp) == pytest.approx(target)
        assert v_param * gp == pytest.approx(4.0)

    def test_degenerate_flat_utilities(self, tiny_prepared):
        from repro.abr.bola import Candidate

        bola = Bola()
        bola.setup(tiny_prepared.manifest, 8.0)
        flat = [
            Candidate(quality=q, size_bytes=1000 * (q + 1), utility=0.0,
                      expected_score=0.9)
            for q in range(3)
        ]
        v_param, gp, target = bola._parameters(flat, 4.0)
        assert np.isfinite(v_param) and np.isfinite(gp)


class TestMpcInternals:
    def test_error_history_bounded(self, tiny_prepared):
        mpc = RobustMPC()
        mpc.setup(tiny_prepared.manifest, 12.0)
        for i in range(20):
            mpc._predict_throughput(tuple(float(j + 1) * 1e6
                                          for j in range(i + 1)))
        assert len(mpc._past_errors) <= 5

    def test_prediction_discounted_by_error(self, tiny_prepared):
        mpc = RobustMPC()
        mpc.setup(tiny_prepared.manifest, 12.0)
        first = mpc._predict_throughput((8e6,) * 5)
        # A wildly wrong step raises the max error and cuts predictions.
        mpc._predict_throughput((8e6,) * 4 + (1e6,))
        third = mpc._predict_throughput((8e6,) * 5)
        assert third < first


class TestHttpEdges:
    def _http(self, trace=None):
        link = BottleneckLink(
            trace if trace is not None else constant_trace(10.0),
            queue_packets=32,
        )
        return VoxelHttp(QuicConnection(link, Clock()))

    def test_refetch_with_zero_budget(self, tiny_prepared):
        http = self._http(tmobile_trace(seed=5))
        entry = tiny_prepared.manifest.entry(12, 2)
        delivery = http.fetch_segment(entry)
        if not delivery.lost_intervals:
            pytest.skip("no loss on this seed")
        assert http.refetch_lost(delivery, budget_bytes=0) == 0

    def test_refetch_noop_without_losses(self, tiny_prepared):
        http = self._http()
        entry = tiny_prepared.manifest.entry(5, 0)
        delivery = http.fetch_segment(entry)
        assert delivery.lost_intervals == []
        assert http.refetch_lost(delivery) == 0

    def test_skipped_bytes_property(self, tiny_prepared):
        http = self._http()
        entry = tiny_prepared.manifest.entry(12, 0)
        target = entry.quality_points[-1].bytes
        delivery = http.fetch_segment(entry, target_bytes=target)
        assert delivery.skipped_bytes == entry.total_bytes - delivery.bytes_requested

    def test_dropped_frames_includes_full_corruption(self, tiny_prepared):
        from repro.transport.http import SegmentDelivery

        entry = tiny_prepared.manifest.entry(5, 0)
        delivery = SegmentDelivery(
            entry=entry, bytes_requested=100, bytes_delivered=50,
            skipped_frames=[10], corruption={11: 1.0, 12: 0.5},
            elapsed=1.0, unreliable=True,
        )
        assert delivery.dropped_frames == [10, 11]
        assert delivery.partial_frames == {12: 0.5}


class TestConnectionIdleEdges:
    def test_idle_zero_is_noop(self):
        conn = QuicConnection(
            BottleneckLink(constant_trace(10.0)), Clock()
        )
        before = conn.clock.now
        conn.idle(0.0)
        conn.idle(-1.0)
        assert conn.clock.now == before

    def test_counters_accumulate(self):
        conn = QuicConnection(
            BottleneckLink(tmobile_trace(), queue_packets=8), Clock()
        )
        conn.download(2_000_000, reliable=False)
        conn.download(2_000_000, reliable=True)
        assert conn.total_delivered > 0
        assert conn.total_retransmitted >= 0


class TestVideoAliases:
    def test_segment_accessors_consistent(self, tiny_video):
        seg = tiny_video.segment(7, 3)
        assert seg.quality == 7
        assert seg.index == 3
        assert seg.bitrate_mbps == pytest.approx(
            seg.total_bytes * 8 / 4.0 / 1e6
        )

    def test_total_size(self, tiny_video):
        assert tiny_video.total_size_bytes(12) == sum(
            tiny_video.segment_sizes(12)
        )


class TestSurveyEdge:
    def test_more_participants_than_clips(self, tiny_prepared):
        from repro.experiments.runner import ExperimentConfig, run_single
        from repro.experiments.survey import run_survey

        config = ExperimentConfig(
            video="tinytest", abr="bola", trace="verizon",
            buffer_segments=1, repetitions=1, partially_reliable=False,
        )
        session = run_single(config, prepared=tiny_prepared)
        result = run_survey([session], [session], participants=30, seed=0)
        # Identical clips: preference is noise around 50 % plus ties
        # counted for VOXEL.
        assert 0.3 <= result.preference_voxel <= 0.9
