"""Tests for the analytic QoE model and metric front-ends."""

import numpy as np
import pytest

from repro.qoe.metrics import METRICS, PSNR, SSIM, VMAF, get_metric
from repro.qoe.model import (
    DEFAULT_PARAMS,
    QoEParams,
    decode_segment,
    pristine_score,
)


class TestEncodingDistortion:
    def test_top_quality_is_reference(self, tiny_video):
        for seg in tiny_video.segments[12]:
            assert pristine_score(seg) == pytest.approx(1.0)

    def test_score_monotone_in_quality(self, tiny_video):
        for index in range(tiny_video.num_segments):
            scores = [
                pristine_score(tiny_video.segment(q, index))
                for q in range(13)
            ]
            assert all(a <= b + 1e-12 for a, b in zip(scores, scores[1:]))

    def test_low_quality_plausible(self, tiny_video):
        for seg in tiny_video.segments[0]:
            score = pristine_score(seg)
            assert 0.55 < score < 0.97  # 144p vs 4K: bad but watchable

    def test_harder_content_scores_lower(self):
        params = DEFAULT_PARAMS
        easy = params.encoding_distortion(activity=0.1, rate_ratio=2.0)
        hard = params.encoding_distortion(activity=0.9, rate_ratio=2.0)
        assert hard > easy

    def test_distortion_zero_at_reference_rate(self):
        assert DEFAULT_PARAMS.encoding_distortion(0.5, 1.0) == pytest.approx(0.0)


class TestDecode:
    def test_no_loss_matches_pristine(self, segment):
        result = decode_segment(segment)
        assert result.score == pytest.approx(pristine_score(segment))
        assert result.delivered_frames == len(segment.frames)

    def test_dropping_reduces_score(self, segment):
        base = decode_segment(segment).score
        dropped = decode_segment(segment, dropped=[95]).score
        assert dropped < base

    def test_drop_monotonicity(self, segment):
        """More drops can never improve the score."""
        order = [95, 93, 91, 89, 87, 85, 50, 30]
        prev = decode_segment(segment).score
        for k in range(1, len(order) + 1):
            score = decode_segment(segment, dropped=order[:k]).score
            assert score <= prev + 1e-12
            prev = score

    def test_i_frame_drop_forbidden(self, segment):
        with pytest.raises(ValueError, match="I-frame"):
            decode_segment(segment, dropped=[0])

    def test_consecutive_drops_worse_than_spread(self, segment):
        """Freeze error accumulates over consecutive drops (Fig. 2b)."""
        consecutive = decode_segment(segment, dropped=[90, 91, 92, 93]).score
        spread = decode_segment(segment, dropped=[30, 50, 70, 90]).score
        # Both drop 4 frames; the consecutive run freezes longer.
        # (Individual frames differ in motion, so allow rare ties.)
        assert consecutive <= spread + 0.02

    def test_referenced_drop_worse_than_unreferenced(self, segment):
        frames = segment.frames
        referenced = [
            i for i in frames.referenced_indices()
            if i != 0 and frames[i].ftype.value == "P"
        ]
        unreferenced = frames.unreferenced_indices()
        # Compare a mid-segment P-frame against a nearby unreferenced b.
        p_idx = referenced[len(referenced) // 2]
        b_idx = min(unreferenced, key=lambda i: abs(i - p_idx))
        p_score = decode_segment(segment, dropped=[p_idx]).score
        b_score = decode_segment(segment, dropped=[b_idx]).score
        assert p_score <= b_score + 1e-9

    def test_corruption_cheaper_than_drop(self, segment):
        drop = decode_segment(segment, dropped=[60]).score
        corrupt = decode_segment(segment, corruption={60: 0.5}).score
        assert corrupt >= drop

    def test_corruption_full_fraction_close_to_drop(self, segment):
        full_corrupt = decode_segment(segment, corruption={60: 1.0}).score
        assert full_corrupt <= decode_segment(segment).score

    def test_corruption_clipped(self, segment):
        a = decode_segment(segment, corruption={60: 1.7}).score
        b = decode_segment(segment, corruption={60: 1.0}).score
        assert a == pytest.approx(b)

    def test_corruption_on_dropped_frame_ignored(self, segment):
        a = decode_segment(segment, dropped=[60], corruption={60: 0.5}).score
        b = decode_segment(segment, dropped=[60]).score
        assert a == pytest.approx(b)

    def test_frame_scores_bounded(self, segment):
        result = decode_segment(
            segment, dropped=list(range(40, 96)), corruption={10: 0.9}
        )
        assert (result.frame_scores >= 0).all()
        assert (result.frame_scores <= 1).all()

    def test_error_propagates_to_referrers(self, segment):
        """Dropping a P anchor damages frames that reference it."""
        frames = segment.frames
        anchor = 48  # a P frame (multiple of mini-GOP)
        result = decode_segment(segment, dropped=[anchor])
        inbound = frames.inbound_references()[anchor]
        assert inbound, "anchor should be referenced"
        for referrer, _ in inbound:
            assert result.frame_scores[referrer] < 1.0

    def test_custom_params(self, segment):
        harsh = QoEParams(freeze_cost=0.5)
        soft = QoEParams(freeze_cost=0.01)
        harsh_score = decode_segment(segment, params=harsh, dropped=[90]).score
        soft_score = decode_segment(segment, params=soft, dropped=[90]).score
        assert harsh_score < soft_score


class TestMetrics:
    def test_registry(self):
        assert set(METRICS) == {"ssim", "vmaf", "psnr"}
        assert get_metric("SSIM") is SSIM
        with pytest.raises(KeyError):
            get_metric("mos")

    def test_ssim_identity(self):
        assert SSIM.from_ssim(0.97) == pytest.approx(0.97)

    def test_vmaf_range_and_anchors(self):
        assert VMAF.from_ssim(1.0) == pytest.approx(100.0)
        assert VMAF.from_ssim(0.0) == pytest.approx(0.0, abs=1.0)
        assert 88 <= VMAF.from_ssim(0.99) <= 97
        assert 72 <= VMAF.from_ssim(0.95) <= 88

    def test_monotone_transforms(self):
        ssims = np.linspace(0, 1, 50)
        for metric in (VMAF, PSNR):
            values = [metric.from_ssim(s) for s in ssims]
            assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_normalize_round_trip(self):
        for metric in (SSIM, VMAF, PSNR):
            assert metric.normalize(metric.from_ssim(1.0)) == pytest.approx(1.0)
            assert 0.0 <= metric.normalize(metric.from_ssim(0.5)) <= 1.0

    def test_psnr_reasonable_values(self):
        assert 35 <= PSNR.from_ssim(0.99) <= 50
        assert PSNR.from_ssim(0.5) < PSNR.from_ssim(0.9)

    def test_excellent_threshold(self):
        assert VMAF.excellent_threshold() == pytest.approx(
            VMAF.from_ssim(0.99)
        )
