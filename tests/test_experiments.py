"""Tests for the experiment runner, figure functions, and survey model."""

import numpy as np
import pytest

from repro.experiments.runner import (
    ExperimentConfig,
    TrialSummary,
    compare,
    run_single,
    run_trials,
)
from repro.experiments.survey import (
    DIMENSIONS,
    _session_opinion,
    run_survey,
)
from repro.experiments import figures


@pytest.fixture(scope="module")
def tiny_config(tiny_prepared):
    return ExperimentConfig(
        video="tinytest", abr="bola", trace="verizon",
        buffer_segments=2, repetitions=3,
    )


class TestRunner:
    def test_run_single(self, tiny_prepared, tiny_config):
        metrics = run_single(tiny_config, prepared=tiny_prepared)
        assert len(metrics.records) == 6
        assert metrics.abr == "bola"

    def test_run_trials_shifts_traces(self, tiny_prepared, tiny_config):
        summary = run_trials(tiny_config, prepared=tiny_prepared)
        assert len(summary.sessions) == 3
        # Shifted traces make repetitions differ (almost surely).
        stalls = {round(s.total_stall, 6) for s in summary.sessions}
        ssims = {round(s.mean_ssim, 9) for s in summary.sessions}
        assert len(stalls) > 1 or len(ssims) > 1

    def test_trial_metrics_are_scoped(self, tiny_prepared, tiny_config):
        # Registry hygiene: each trial's metrics dump covers only its own
        # sessions, so back-to-back identical trials report identically
        # instead of accumulating process-wide state.
        first = run_trials(tiny_config, prepared=tiny_prepared)
        second = run_trials(tiny_config, prepared=tiny_prepared)
        assert first.metrics is not None
        assert first.metrics == second.metrics
        sessions = first.metrics["counters"][
            "experiments.sessions{abr=bola,trace=verizon}"
        ]
        assert sessions == tiny_config.repetitions

    def test_trial_metrics_merge_into_parent(self, tiny_prepared,
                                             tiny_config):
        from repro.obs import get_registry

        key = "experiments.sessions{abr=bola,trace=verizon}"
        before = get_registry().dump()["counters"].get(key, 0.0)
        run_trials(tiny_config, prepared=tiny_prepared)
        after = get_registry().dump()["counters"].get(key, 0.0)
        assert after == before + tiny_config.repetitions

    def test_summary_aggregates(self, tiny_prepared, tiny_config):
        summary = run_trials(tiny_config, prepared=tiny_prepared)
        row = summary.row()
        assert 0 <= row["buf_ratio_p90"] <= 1
        assert row["bitrate_kbps"] > 0
        assert 0 < row["ssim"] <= 1
        assert summary.ssim_samples().shape == (18,)

    def test_compare_variants(self, tiny_prepared, tiny_config):
        out = compare(
            tiny_config,
            {
                "BOLA": {"abr": "bola", "partially_reliable": False},
                "VOXEL": {"abr": "abr_star", "partially_reliable": True},
            },
            prepared=tiny_prepared,
        )
        assert set(out) == {"BOLA", "VOXEL"}
        assert all(isinstance(v, TrialSummary) for v in out.values())

    def test_cross_traffic_config(self, tiny_prepared):
        config = ExperimentConfig(
            video="tinytest", abr="bola", buffer_segments=2,
            repetitions=1, cross_traffic_mbps=15.0,
            partially_reliable=False,
        )
        metrics = run_single(config, prepared=tiny_prepared)
        assert len(metrics.records) == 6

    def test_label(self, tiny_config):
        assert "bola" in tiny_config.label()
        assert "Q*" in tiny_config.label()


class TestFigureFunctions:
    """Smoke tests on drastically reduced workloads — the benchmarks run
    the real sizes; here we verify structure and basic sanity."""

    def test_tables(self):
        rows = figures.table1_videos(("bbb",))
        assert rows[0]["genre"] == "Comedy"
        ladder = figures.table2_ladder("bbb")
        assert len(ladder) == 13
        assert ladder[-1]["avg_bitrate_mbps"] == pytest.approx(10.0)
        assert len(figures.table3_youtube()) == 10

    def test_fig1(self):
        out = figures.fig1_drop_tolerance(
            videos=("bbb",), cases=((12, 0.99),), segment_stride=15
        )
        cdf = out["Q12/0.99"]["bbb"]
        assert (cdf["x"] >= 0).all() and (cdf["x"] <= 100).all()
        assert cdf["y"][-1] == pytest.approx(1.0)

    def test_fig1d(self):
        out = figures.fig1d_low_quality_ssim(videos=("bbb",), qualities=(9,))
        assert "bbb/Q9" in out

    def test_fig2a(self):
        out = figures.fig2a_droppable_positions(
            videos=("bbb",), segment_stride=25
        )
        frac = out["bbb"]
        assert frac[0] == 0.0  # the I-frame is never droppable
        assert frac.max() <= 1.0

    def test_fig2b(self):
        out = figures.fig2b_ordering_comparison(
            videos=("bbb",), segment_stride=25
        )
        data = out["bbb"]
        # The ranking tolerates at least as much as naive tail drops.
        assert np.median(data["ranked"]["x"]) >= np.median(data["tail"]["x"])
        # Tail-only drops hit more referenced frames (§3 insight 2).
        assert (
            data["tail_referenced_fraction"]
            >= data["ranked_referenced_fraction"]
        )

    def test_fig15(self):
        out = figures.fig15_vbr_variation(videos=("ed",), qualities=(12, 6))
        assert out["ed"]["Q12"].shape == (75,)
        assert out["ed"]["Q12"].mean() > out["ed"]["Q6"].mean()


class TestSurvey:
    def _sessions(self, tiny_prepared, abr, pr, n=3):
        config = ExperimentConfig(
            video="tinytest", abr=abr, trace="tmobile",
            partially_reliable=pr, buffer_segments=1, repetitions=n,
        )
        return run_trials(config, prepared=tiny_prepared).sessions

    def test_opinion_dimensions_bounded(self, tiny_prepared):
        sessions = self._sessions(tiny_prepared, "bola", False)
        for session in sessions:
            opinion = _session_opinion(session)
            assert set(opinion) == set(DIMENSIONS)
            for value in opinion.values():
                assert 1.0 <= value <= 5.0

    def test_survey_structure(self, tiny_prepared):
        voxel = self._sessions(tiny_prepared, "abr_star", True)
        bola = self._sessions(tiny_prepared, "bola", False)
        result = run_survey(voxel, bola, participants=20, seed=1)
        assert result.participants == 20
        assert 0.0 <= result.preference_voxel <= 1.0
        for system in ("VOXEL", "BOLA"):
            for dim in DIMENSIONS:
                assert 1.0 <= result.mos[system][dim] <= 5.0
            assert 0.0 <= result.would_stop[system] <= 1.0

    def test_survey_deterministic(self, tiny_prepared):
        voxel = self._sessions(tiny_prepared, "abr_star", True)
        bola = self._sessions(tiny_prepared, "bola", False)
        a = run_survey(voxel, bola, participants=10, seed=5)
        b = run_survey(voxel, bola, participants=10, seed=5)
        assert a.preference_voxel == b.preference_voxel
        assert a.mos == b.mos

    def test_survey_requires_sessions(self):
        with pytest.raises(ValueError):
            run_survey([], [], participants=5)

    def test_stall_free_beats_stally(self, tiny_prepared):
        good = self._sessions(tiny_prepared, "abr_star", True, n=2)
        # Fabricate a terrible comparison stream by inflating stalls.
        import copy

        bad = [copy.deepcopy(s) for s in good]
        for session in bad:
            session.total_stall = session.media_duration * 0.5
        result = run_survey(good, bad, participants=40, seed=2)
        assert result.preference_voxel > 0.7
        assert result.mos_delta("fluidity") > 0.5
