"""Tests for the live streaming session and the PANDA baseline."""

import numpy as np
import pytest

from repro.abr import make_abr
from repro.abr.panda import PandaABR
from repro.network.traces import constant_trace, tmobile_trace
from repro.player import (
    LiveStreamingSession,
    SessionConfig,
    StreamingSession,
    stream_live,
)


class TestLiveSession:
    def _live(self, prepared, abr_name="bola", trace=None, buf=1,
              encoder_delay=1.0, pr=True):
        return stream_live(
            prepared,
            make_abr(abr_name, prepared=prepared),
            trace if trace is not None else constant_trace(20.0),
            buffer_segments=buf,
            encoder_delay=encoder_delay,
            partially_reliable=pr,
        )

    def test_availability_gates_downloads(self, tiny_prepared):
        """On a fast link the session is paced by the live edge, not the
        network: wall duration ~= broadcast duration."""
        live = self._live(tiny_prepared, trace=constant_trace(100.0))
        media = tiny_prepared.video.duration
        assert live.session.wall_duration >= media - 4.0

    def test_latency_floor(self, tiny_prepared):
        """Latency can never beat segment duration + encoder delay."""
        live = self._live(tiny_prepared, encoder_delay=1.0)
        floor = tiny_prepared.video.segment_duration + 1.0
        for latency in live.segment_latencies:
            assert latency >= floor - 1e-6

    def test_latency_reasonable_on_fast_link(self, tiny_prepared):
        live = self._live(tiny_prepared, trace=constant_trace(50.0))
        # Fast link, 1-segment buffer: latency stays near the floor.
        assert live.mean_latency < 12.0

    def test_stalls_increase_latency(self, tiny_prepared):
        fast = self._live(tiny_prepared, trace=constant_trace(50.0))
        slow = self._live(tiny_prepared, trace=constant_trace(1.2),
                          abr_name="tput")
        assert slow.final_latency >= fast.final_latency

    def test_encoder_delay_shifts_latency(self, tiny_prepared):
        small = self._live(tiny_prepared, encoder_delay=0.5)
        large = self._live(tiny_prepared, encoder_delay=3.0)
        assert large.mean_latency > small.mean_latency + 1.5

    def test_negative_encoder_delay_rejected(self, tiny_prepared):
        with pytest.raises(ValueError):
            LiveStreamingSession(
                tiny_prepared,
                make_abr("bola", prepared=tiny_prepared),
                constant_trace(10.0),
                SessionConfig(buffer_segments=1),
                encoder_delay=-1.0,
            )

    def test_all_segments_latencied(self, tiny_prepared):
        live = self._live(tiny_prepared)
        assert len(live.segment_latencies) == 6
        assert live.p95_latency >= live.mean_latency - 1e-9

    def test_voxel_live_over_challenging_trace(self, tiny_prepared):
        live = self._live(
            tiny_prepared, abr_name="abr_star", trace=tmobile_trace(seed=4)
        )
        assert len(live.session.records) == 6


class TestManifestFetchModes:
    def _run(self, prepared, mode):
        abr = make_abr("bola", prepared=prepared)
        config = SessionConfig(
            buffer_segments=2, partially_reliable=True, manifest_fetch=mode
        )
        session = StreamingSession(
            prepared, abr, constant_trace(10.0), config
        )
        return session.run()

    def test_full_manifest_delays_startup(self, tiny_prepared):
        free = self._run(tiny_prepared, "free")
        full = self._run(tiny_prepared, "full")
        assert full.startup_delay > free.startup_delay

    def test_incremental_cheaper_than_full(self, tiny_prepared):
        incremental = self._run(tiny_prepared, "incremental")
        full = self._run(tiny_prepared, "full")
        assert incremental.startup_delay < full.startup_delay

    def test_unknown_mode_rejected(self, tiny_prepared):
        with pytest.raises(ValueError, match="manifest_fetch"):
            self._run(tiny_prepared, "telepathy")


class TestPanda:
    def _ctx(self, prepared, tput, last=None, index=1):
        from repro.abr.base import DecisionContext

        manifest = prepared.manifest
        entries = [
            manifest.entry(q, index) for q in range(manifest.num_levels)
        ]
        return DecisionContext(
            segment_index=index,
            buffer_level_s=4.0,
            buffer_capacity_s=8.0,
            throughput_bps=tput,
            last_quality=last,
            manifest=manifest,
            entries=entries,
            segment_duration=4.0,
            voxel_capable=False,
        )

    def test_starts_at_lowest_without_estimate(self, tiny_prepared):
        abr = PandaABR()
        assert abr.choose(self._ctx(tiny_prepared, 0.0)).quality == 0

    def test_rate_tracks_bandwidth(self, tiny_prepared):
        rich, poor = PandaABR(), PandaABR()
        q_rich = [rich.choose(self._ctx(tiny_prepared, 40e6)).quality
                  for _ in range(4)][-1]
        q_poor = [poor.choose(self._ctx(tiny_prepared, 1e6)).quality
                  for _ in range(4)][-1]
        assert q_rich > q_poor

    def test_hysteresis_dampens_upswitch(self, tiny_prepared):
        abr = PandaABR(up_hysteresis=5.0)
        first = abr.choose(self._ctx(tiny_prepared, 8e6, last=2))
        # A huge hysteresis margin keeps upswitches modest.
        assert first.quality <= 6

    def test_reliable_decisions(self, tiny_prepared):
        abr = PandaABR()
        assert abr.choose(self._ctx(tiny_prepared, 5e6)).unreliable is False

    def test_end_to_end(self, tiny_prepared):
        abr = PandaABR()
        config = SessionConfig(buffer_segments=3, partially_reliable=False)
        metrics = StreamingSession(
            tiny_prepared, abr, constant_trace(8.0), config
        ).run()
        assert len(metrics.records) == 6
        assert metrics.avg_bitrate_kbps > 500

    def test_factory(self, tiny_prepared):
        assert isinstance(make_abr("panda"), PandaABR)
