"""Tests for the event-driven packet-level backend and fairness study."""

import numpy as np
import pytest

from repro.abr import make_abr
from repro.experiments.fairness import FairnessResult, run_fairness
from repro.network.events import EventScheduler
from repro.network.packetlink import Packet, PacketRouter
from repro.network.traces import constant_trace, tmobile_trace
from repro.player import SessionConfig, StreamingSession
from repro.transport.packet_connection import PacketLevelConnection


class TestEventScheduler:
    def test_ordering(self):
        sched = EventScheduler()
        order = []
        sched.schedule(2.0, lambda: order.append("b"))
        sched.schedule(1.0, lambda: order.append("a"))
        sched.schedule(3.0, lambda: order.append("c"))
        while sched.step():
            pass
        assert order == ["a", "b", "c"]
        assert sched.now == pytest.approx(3.0)

    def test_stable_simultaneous(self):
        sched = EventScheduler()
        order = []
        for tag in ("first", "second", "third"):
            sched.schedule(1.0, lambda t=tag: order.append(t))
        while sched.step():
            pass
        assert order == ["first", "second", "third"]

    def test_cancel(self):
        sched = EventScheduler()
        fired = []
        keep = sched.schedule(1.0, lambda: fired.append("keep"))
        drop = sched.schedule(1.0, lambda: fired.append("drop"))
        sched.cancel(drop)
        while sched.step():
            pass
        assert fired == ["keep"]
        del keep

    def test_callbacks_can_schedule(self):
        sched = EventScheduler()
        hits = []

        def recurse():
            hits.append(sched.now)
            if len(hits) < 3:
                sched.schedule(1.0, recurse)

        sched.schedule(1.0, recurse)
        while sched.step():
            pass
        assert hits == [1.0, 2.0, 3.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-0.1, lambda: None)

    def test_run_until_event_budget(self):
        sched = EventScheduler()

        def forever():
            sched.schedule(0.001, forever)

        sched.schedule(0.0, forever)
        with pytest.raises(RuntimeError, match="budget"):
            sched.run_until(lambda: False, max_events=100)


class _Sink:
    """Minimal flow stub collecting router callbacks."""

    def __init__(self):
        self.delivered = []
        self.dropped = []

    def on_delivered(self, packet):
        self.delivered.append(packet.sequence)

    def on_dropped(self, packet):
        self.dropped.append(packet.sequence)


class TestPacketRouter:
    def test_delivery_order_fifo(self):
        sched = EventScheduler()
        router = PacketRouter(sched, constant_trace(10.0), queue_packets=10)
        sink = _Sink()
        for seq in range(5):
            router.enqueue(Packet(flow=sink, sequence=seq))
        while sched.step():
            pass
        assert sink.delivered == [0, 1, 2, 3, 4]
        assert sink.dropped == []

    def test_overflow_drops(self):
        sched = EventScheduler()
        router = PacketRouter(sched, constant_trace(1.0), queue_packets=3)
        sink = _Sink()
        for seq in range(10):
            router.enqueue(Packet(flow=sink, sequence=seq))
        while sched.step():
            pass
        assert len(sink.delivered) + len(sink.dropped) == 10
        assert sink.dropped  # 3-packet queue cannot absorb a 10 burst
        assert router.dropped_packets == len(sink.dropped)

    def test_service_rate_matches_trace(self):
        sched = EventScheduler()
        router = PacketRouter(sched, constant_trace(12.0), queue_packets=100)
        sink = _Sink()
        count = 100
        for seq in range(count):
            router.enqueue(Packet(flow=sink, sequence=seq))
        while sched.step():
            pass
        # 100 x 1500 B at 12 Mbps = 0.1 s (+ propagation).
        assert sched.now == pytest.approx(0.1 + 0.03, rel=0.05)


class TestPacketConnection:
    def _conn(self, trace=None, queue=32, pr=True):
        sched = EventScheduler()
        router = PacketRouter(
            sched,
            trace if trace is not None else constant_trace(10.0),
            queue_packets=queue,
        )
        return PacketLevelConnection(router, sched, partially_reliable=pr)

    def test_reliable_complete(self):
        conn = self._conn()
        result = conn.download(2_000_000, reliable=True)
        assert result.delivered == 2_000_000
        assert result.lost == []

    def test_duration_near_ideal(self):
        conn = self._conn()
        result = conn.download(5_000_000, reliable=True)
        ideal = 5_000_000 * 8 / 10e6
        assert ideal * 0.95 <= result.elapsed <= ideal * 1.4

    def test_unreliable_accounting(self):
        conn = self._conn(trace=tmobile_trace(), queue=8)
        result = conn.download(3_000_000, reliable=False)
        lost = sum(e - s for s, e in result.lost)
        assert result.delivered + lost == result.requested
        for (s1, e1), (s2, e2) in zip(result.lost, result.lost[1:]):
            assert e1 < s2

    def test_plain_quic_forces_reliable(self):
        conn = self._conn(trace=tmobile_trace(), queue=8, pr=False)
        result = conn.download(1_000_000, reliable=False)
        assert result.lost == []
        assert result.delivered == 1_000_000

    def test_progress_truncation(self):
        conn = self._conn()

        def cut(elapsed, sent):
            return 400_000 if sent > 100_000 else None

        result = conn.download(5_000_000, reliable=True, progress=cut)
        assert result.truncated_at is not None
        assert result.requested <= 450_000

    def test_zero_and_negative(self):
        conn = self._conn()
        assert conn.download(0).delivered == 0
        with pytest.raises(ValueError):
            conn.download(-1)

    def test_idle_advances_clock(self):
        conn = self._conn()
        before = conn.clock.now
        conn.idle(2.5)
        assert conn.clock.now == pytest.approx(before + 2.5)

    def test_agreement_with_round_backend(self):
        """The two backends agree on transfer time within ~25 %."""
        from repro.network.clock import Clock
        from repro.network.link import BottleneckLink
        from repro.transport.connection import QuicConnection

        packet = self._conn().download(4_000_000, reliable=True)
        round_conn = QuicConnection(
            BottleneckLink(constant_trace(10.0), queue_packets=32), Clock()
        )
        round_result = round_conn.download(4_000_000, reliable=True)
        assert packet.elapsed == pytest.approx(
            round_result.elapsed, rel=0.25
        )


class TestSessionOnPacketBackend:
    def test_full_session_runs(self, tiny_prepared):
        abr = make_abr("abr_star", prepared=tiny_prepared)
        config = SessionConfig(
            buffer_segments=2, transport_backend="packet"
        )
        metrics = StreamingSession(
            tiny_prepared, abr, constant_trace(10.0), config
        ).run()
        assert len(metrics.records) == 6
        assert metrics.mean_ssim > 0.5

    def test_unknown_backend_rejected(self, tiny_prepared):
        abr = make_abr("bola", prepared=tiny_prepared)
        config = SessionConfig(transport_backend="carrier-pigeon")
        with pytest.raises(ValueError, match="backend"):
            StreamingSession(
                tiny_prepared, abr, constant_trace(10.0), config
            )

    def test_backends_agree_on_stall_regime(self, tiny_prepared):
        results = {}
        for backend in ("round", "packet"):
            abr = make_abr("bola", prepared=tiny_prepared)
            config = SessionConfig(
                buffer_segments=2, partially_reliable=False,
                transport_backend=backend,
            )
            metrics = StreamingSession(
                tiny_prepared, abr, constant_trace(12.0), config
            ).run()
            results[backend] = metrics
        # Plenty of bandwidth: both backends stream stall-free.
        assert results["round"].buf_ratio == 0.0
        assert results["packet"].buf_ratio == 0.0


class TestFairness:
    def test_reliable_flows_share_fairly(self):
        result = run_fairness(
            flow_specs=(("a", True), ("b", True)), transfer_mb=4.0
        )
        assert result.jain_index > 0.9

    def test_unreliable_flow_is_tcp_friendly(self):
        """QUIC*'s unreliable streams do not starve reliable flows."""
        result = run_fairness(
            flow_specs=(
                ("reliable-1", True),
                ("reliable-2", True),
                ("voxel-unreliable", False),
            ),
            transfer_mb=4.0,
        )
        assert result.jain_index > 0.85
        rates = {f.label: f.throughput_mbps for f in result.flows}
        # The unreliable flow stays within ~2x of each reliable flow.
        assert rates["voxel-unreliable"] < 2.0 * rates["reliable-1"]
        assert rates["voxel-unreliable"] < 2.0 * rates["reliable-2"]

    def test_utilization_high(self):
        result = run_fairness(
            flow_specs=(("a", True), ("b", False)), transfer_mb=4.0
        )
        assert result.utilization > 0.7

    def test_single_flow_gets_everything(self):
        result = run_fairness(
            flow_specs=(("solo", True),), transfer_mb=4.0, link_mbps=10.0
        )
        assert result.flows[0].throughput_mbps == pytest.approx(10.0, rel=0.2)
        assert result.jain_index == pytest.approx(1.0)
