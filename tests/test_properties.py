"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.network.link import BottleneckLink
from repro.network.traces import NetworkTrace, constant_trace
from repro.player.buffer import PlaybackBuffer
from repro.prep.manifest import QualityPoint, SegmentEntry
from repro.prep.ranking import Ordering, build_order, validate_order
from repro.qoe.metrics import PSNR, SSIM, VMAF
from repro.qoe.model import decode_segment
from repro.transport.connection import _merge_intervals
from repro.transport.cubic import CubicController, MIN_WINDOW
from repro.video.content import ContentProfile
from repro.video.encoder import encode_video

# Reusable strategies -------------------------------------------------------

intervals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=2_000),
    ).map(lambda t: (t[0], t[0] + t[1])),
    max_size=30,
)

scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestMergeIntervals:
    @given(intervals)
    def test_merged_sorted_and_disjoint(self, raw):
        merged = _merge_intervals(list(raw))
        for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
            assert s1 < e1
            assert e1 < s2

    @given(intervals)
    def test_coverage_preserved(self, raw):
        def cover(ranges):
            points = set()
            for s, e in ranges:
                points.update(range(s, e))
            return points

        assert cover(_merge_intervals(list(raw))) == cover(raw)


class TestCubicProperties:
    @given(
        st.lists(st.booleans(), min_size=1, max_size=80),
        st.floats(min_value=0.01, max_value=0.5),
    )
    def test_window_always_valid(self, losses, rtt):
        cc = CubicController()
        for lost in losses:
            cwnd = cc.on_round(rtt=rtt, lost=lost)
            assert cwnd >= MIN_WINDOW
            assert np.isfinite(cwnd)

    @given(st.integers(min_value=1, max_value=20))
    def test_loss_never_increases_window(self, rounds):
        cc = CubicController()
        for _ in range(rounds):
            cc.on_round(rtt=0.06, lost=False)
        before = cc.cwnd
        cc.on_round(rtt=0.06, lost=True)
        assert cc.cwnd <= before


class TestLinkProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                 max_size=40),
        st.integers(min_value=1, max_value=200),
        st.floats(min_value=0.5, max_value=50.0),
    )
    def test_conservation_and_queue_bound(self, bursts, queue, mbps):
        link = BottleneckLink(constant_trace(mbps), queue_packets=queue)
        t = 0.0
        for burst in bursts:
            outcome = link.offer_round(t, burst)
            assert outcome.delivered_packets + outcome.dropped_packets == burst
            assert 0 <= link.queue_bytes <= queue * link.mtu + 1e-6
            assert outcome.rtt >= link.base_rtt
            t += outcome.rtt


class TestBufferProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),  # push duration
                st.floats(min_value=0.0, max_value=20.0),  # drain dt
            ),
            max_size=40,
        )
    )
    def test_invariants(self, events):
        buf = PlaybackBuffer(capacity_s=8.0)
        total_pushed = 0.0
        total_stall = 0.0
        for push, drain in events:
            buf.push_segment(push)
            total_pushed += push
            stall = buf.drain(drain)
            total_stall += stall
            assert buf.level_s >= -1e-9
            assert 0.0 <= stall <= drain + 1e-9
        assert buf.played_s + buf.level_s == pytest.approx(total_pushed)


class TestMetricProperties:
    @given(scores)
    def test_transforms_bounded(self, s):
        assert 0.0 <= VMAF.from_ssim(s) <= 100.0
        assert PSNR.lo <= PSNR.from_ssim(s) <= PSNR.hi + 1e-9
        assert 0.0 <= VMAF.normalize(VMAF.from_ssim(s)) <= 1.0

    @given(scores, scores)
    def test_transforms_monotone(self, a, b):
        lo, hi = min(a, b), max(a, b)
        for metric in (SSIM, VMAF, PSNR):
            assert metric.from_ssim(lo) <= metric.from_ssim(hi) + 1e-9


class TestManifestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.5, max_value=1.0, allow_nan=False),
                st.integers(min_value=1, max_value=96),
                st.integers(min_value=100, max_value=10_000_000),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_quality_point_roundtrip(self, tuples):
        for score, frames, nbytes in tuples:
            point = QualityPoint(round(score, 4), frames, nbytes)
            assert QualityPoint.parse(point.serialize()) == point


class TestVideoProperties:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        motion=st.floats(min_value=0.05, max_value=0.95),
        complexity=st.floats(min_value=0.1, max_value=0.9),
        std=st.floats(min_value=0.5, max_value=7.5),
        cuts=st.floats(min_value=0.0, max_value=2.0),
    )
    def test_encoder_invariants(self, motion, complexity, std, cuts):
        profile = ContentProfile(
            name=f"prop-{motion:.3f}-{complexity:.3f}-{std:.3f}",
            title="prop", genre="Test", segments=3,
            motion_mean=motion, complexity=complexity,
            size_std_mbps=std, scene_cut_rate=cuts,
        )
        video = encode_video(profile)
        for quality in (0, 12):
            for seg in video.segments[quality]:
                assert seg.frames.total_bytes == seg.total_bytes
                assert seg.frames[0].ftype.value == "I"
                assert len(seg.frames) == 96
        mean12 = np.mean(video.segment_bitrates_mbps(12))
        assert mean12 == pytest.approx(10.0, rel=0.1)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        quality=st.integers(min_value=0, max_value=12),
        drop_seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_decode_monotone_under_nested_drops(self, tiny_video, quality,
                                                drop_seed):
        segment = tiny_video.segment(quality, 0)
        rng = np.random.default_rng(drop_seed)
        candidates = list(range(1, 96))
        rng.shuffle(candidates)
        prev = decode_segment(segment).score
        for k in (4, 12, 30, 60):
            score = decode_segment(segment, dropped=candidates[:k]).score
            assert score <= prev + 1e-9
            prev = score


class TestOrderingProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        ordering=st.sampled_from(list(Ordering)),
        index=st.integers(min_value=0, max_value=5),
        quality=st.integers(min_value=0, max_value=12),
    )
    def test_orderings_always_permutations(self, tiny_video, ordering,
                                           index, quality):
        frames = tiny_video.segment(quality, index).frames
        order = build_order(frames, ordering)
        validate_order(frames, order)


class TestTraceProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                 max_size=50),
        st.floats(min_value=0.1, max_value=50.0),
    )
    def test_offset_preserves_std(self, samples, target):
        trace = NetworkTrace("t", np.asarray(samples))
        scaled = trace.offset_to_mean(target)
        assert scaled.mean_mbps() >= 0.0
        # When no flooring happens the std is exactly preserved.
        if (trace.samples_mbps + (target - trace.mean_mbps()) >= 0.05).all():
            assert scaled.std_mbps() == pytest.approx(trace.std_mbps())
            assert scaled.mean_mbps() == pytest.approx(target)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.05, max_value=0.95),
        st.integers(min_value=-3, max_value=3),
    )
    def test_shift_wraps(self, whole, frac, shift):
        # Sample times away from integer boundaries: adding the shift can
        # round a float across a sample boundary, which is not a property
        # violation, just float arithmetic.
        t = whole + frac
        trace = NetworkTrace("t", np.arange(1.0, 11.0))
        shifted = trace.shifted(shift * 10.0)  # whole-trace multiples
        assert shifted.bandwidth_mbps(t) == trace.bandwidth_mbps(t)
