"""Tests for the QUIC* transport: CUBIC, connection, HTTP layer."""

import numpy as np
import pytest

from repro.network.clock import Clock
from repro.network.link import BottleneckLink
from repro.network.traces import NetworkTrace, constant_trace, tmobile_trace
from repro.transport.connection import (
    IDLE_TIMEOUT,
    QuicConnection,
    _merge_intervals,
)
from repro.transport.cubic import (
    CUBIC_BETA,
    INITIAL_WINDOW,
    MIN_WINDOW,
    CubicController,
)
from repro.transport.http import VoxelHttp


class TestCubic:
    def test_slow_start_doubles(self):
        cc = CubicController()
        start = cc.cwnd
        cc.on_round(rtt=0.06, lost=False)
        assert cc.cwnd == pytest.approx(start * 2)

    def test_loss_multiplies_by_beta(self):
        cc = CubicController()
        for _ in range(5):
            cc.on_round(rtt=0.06, lost=False)
        before = cc.cwnd
        cc.on_round(rtt=0.06, lost=True)
        assert cc.cwnd == pytest.approx(max(before * CUBIC_BETA, MIN_WINDOW))
        assert not cc.in_slow_start

    def test_cwnd_never_below_min(self):
        cc = CubicController()
        for _ in range(30):
            cc.on_round(rtt=0.06, lost=True)
        assert cc.cwnd >= MIN_WINDOW

    def test_cubic_growth_after_loss(self):
        cc = CubicController()
        for _ in range(6):
            cc.on_round(rtt=0.06, lost=False)
        cc.on_round(rtt=0.06, lost=True)
        after_loss = cc.cwnd
        for _ in range(50):
            cc.on_round(rtt=0.06, lost=False)
        assert cc.cwnd > after_loss  # recovers toward/past W_max

    def test_hystart_exits_slow_start(self):
        cc = CubicController()
        assert cc.in_slow_start
        cc.on_round(rtt=0.06, lost=False, queue_pressure=0.9)
        assert not cc.in_slow_start

    def test_after_idle_collapses_window(self):
        cc = CubicController()
        for _ in range(6):
            cc.on_round(rtt=0.06, lost=False)
        big = cc.cwnd
        cc.after_idle()
        assert cc.cwnd <= INITIAL_WINDOW
        assert cc.ssthresh >= big  # slow start will return quickly

    def test_invalid_rtt(self):
        with pytest.raises(ValueError):
            CubicController().on_round(rtt=0.0, lost=False)

    def test_state_snapshot(self):
        cc = CubicController()
        state = cc.state()
        assert state.cwnd == cc.cwnd


class TestMergeIntervals:
    def test_empty(self):
        assert _merge_intervals([]) == []

    def test_disjoint_sorted(self):
        assert _merge_intervals([(5, 8), (0, 2)]) == [(0, 2), (5, 8)]

    def test_overlap_and_adjacency(self):
        merged = _merge_intervals([(0, 5), (5, 7), (6, 10), (20, 21)])
        assert merged == [(0, 10), (20, 21)]


def _connection(trace=None, queue=32, partially_reliable=True):
    link = BottleneckLink(
        trace if trace is not None else constant_trace(10.0),
        queue_packets=queue,
    )
    return QuicConnection(link, Clock(), partially_reliable=partially_reliable)


class TestConnection:
    def test_reliable_delivers_everything(self):
        conn = _connection()
        result = conn.download(2_000_000, reliable=True)
        assert result.delivered == 2_000_000
        assert result.lost == []
        assert result.complete

    def test_reliable_duration_near_ideal(self):
        conn = _connection()
        result = conn.download(5_000_000, reliable=True)
        ideal = 5_000_000 * 8 / 10e6
        assert ideal <= result.elapsed <= ideal * 1.35

    def test_unreliable_reports_losses(self):
        conn = _connection(trace=tmobile_trace(), queue=16)
        result = conn.download(5_000_000, reliable=False)
        assert result.delivered + sum(
            e - s for s, e in result.lost
        ) == result.requested

    def test_lost_intervals_sorted_disjoint(self):
        conn = _connection(trace=tmobile_trace(), queue=8)
        result = conn.download(4_000_000, reliable=False)
        for (s1, e1), (s2, e2) in zip(result.lost, result.lost[1:]):
            assert e1 < s2
        for s, e in result.lost:
            assert 0 <= s < e <= result.requested

    def test_plain_quic_forces_reliable(self):
        conn = _connection(partially_reliable=False)
        result = conn.download(1_000_000, reliable=False)
        assert result.lost == []
        assert result.delivered == 1_000_000

    def test_zero_bytes(self):
        conn = _connection()
        result = conn.download(0)
        assert result.elapsed == 0.0
        assert result.delivered == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            _connection().download(-5)

    def test_progress_truncation(self):
        conn = _connection()

        def stop_early(elapsed, sent):
            return 500_000 if sent > 200_000 else None

        result = conn.download(5_000_000, reliable=True, progress=stop_early)
        assert result.truncated_at is not None
        assert result.requested <= 600_000  # clamp granularity: one round

    def test_progress_cannot_extend(self):
        conn = _connection()

        def extend(elapsed, sent):
            return 10_000_000

        result = conn.download(1_000_000, reliable=True, progress=extend)
        assert result.requested == 1_000_000

    def test_clock_advances(self):
        conn = _connection()
        before = conn.clock.now
        conn.download(1_000_000)
        assert conn.clock.now > before

    def test_idle_restart_shrinks_window(self):
        conn = _connection()
        conn.download(5_000_000)
        big = conn.cc.cwnd
        conn.idle(IDLE_TIMEOUT * 3)
        conn.download(100_000)
        # After the idle restart the window restarted small (it may have
        # grown again during the new download's slow start).
        assert conn.cc.ssthresh >= MIN_WINDOW
        assert big > INITIAL_WINDOW

    def test_throughput_tracks_trace_bandwidth(self):
        fast = _connection(trace=constant_trace(20.0)).download(2_000_000)
        slow = _connection(trace=constant_trace(1.0)).download(2_000_000)
        assert slow.elapsed > fast.elapsed * 10
        # And each sits near its ideal transfer time.
        assert slow.elapsed == pytest.approx(16.0, rel=0.35)

    def test_request_latency_positive(self):
        result = _connection().download(100_000)
        assert result.request_latency > 0


class TestHttpLayer:
    def test_voxel_fetch_reliable_part_always_complete(self, tiny_prepared):
        conn = _connection()
        http = VoxelHttp(conn)
        entry = tiny_prepared.manifest.entry(12, 0)
        delivery = http.fetch_segment(entry)
        assert delivery.bytes_requested == entry.total_bytes
        assert not delivery.skipped_frames

    def test_partial_fetch_skips_tail_of_priority_order(self, tiny_prepared):
        conn = _connection()
        http = VoxelHttp(conn)
        entry = tiny_prepared.manifest.entry(12, 0)
        target = entry.quality_points[-1].bytes
        delivery = http.fetch_segment(entry, target_bytes=target)
        assert delivery.bytes_requested <= target + 1
        assert delivery.skipped_frames
        skipped = set(delivery.skipped_frames)
        # Skipped frames must be a suffix of the priority order.
        order = list(entry.frame_order)
        suffix = set(order[len(order) - len(skipped):])
        assert skipped == suffix

    def test_target_below_reliable_clamps(self, tiny_prepared):
        conn = _connection()
        http = VoxelHttp(conn)
        entry = tiny_prepared.manifest.entry(12, 0)
        delivery = http.fetch_segment(entry, target_bytes=10)
        assert delivery.bytes_requested == entry.reliable_size
        assert len(delivery.skipped_frames) == len(entry.frame_order)

    def test_unaware_client_fetches_plain(self, tiny_prepared):
        conn = _connection()
        http = VoxelHttp(conn, client_voxel_aware=False)
        assert not http.voxel_capable
        entry = tiny_prepared.manifest.entry(5, 0).basic_view()
        delivery = http.fetch_segment(entry, target_bytes=1000)
        assert delivery.bytes_requested == entry.total_bytes
        assert not delivery.unreliable

    def test_losses_map_to_frames(self, tiny_prepared):
        conn = _connection(trace=tmobile_trace(), queue=8)
        http = VoxelHttp(conn)
        entry = tiny_prepared.manifest.entry(12, 1)
        delivery = http.fetch_segment(entry)
        if delivery.lost_intervals:
            assert delivery.corruption
            for frame, frac in delivery.corruption.items():
                assert 0 < frac <= 1.0
                assert frame in entry.frame_order

    def test_refetch_repairs_losses(self, tiny_prepared):
        conn = _connection(trace=tmobile_trace(seed=5), queue=8)
        http = VoxelHttp(conn)
        entry = tiny_prepared.manifest.entry(12, 2)
        delivery = http.fetch_segment(entry)
        lost_before = delivery.residual_loss_bytes()
        if lost_before == 0:
            pytest.skip("no loss realized on this seed")
        repaired = http.refetch_lost(delivery)
        assert repaired == lost_before
        assert delivery.residual_loss_bytes() == 0
        assert not delivery.partial_frames

    def test_refetch_with_budget_partial(self, tiny_prepared):
        conn = _connection(trace=tmobile_trace(seed=5), queue=8)
        http = VoxelHttp(conn)
        entry = tiny_prepared.manifest.entry(12, 2)
        delivery = http.fetch_segment(entry)
        lost_before = delivery.residual_loss_bytes()
        if lost_before < 2000:
            pytest.skip("not enough loss realized on this seed")
        repaired = http.refetch_lost(delivery, budget_bytes=1000)
        assert repaired <= 1000 + 1
        assert delivery.residual_loss_bytes() == lost_before - repaired

    def test_force_reliable_payload_has_no_loss(self, tiny_prepared):
        conn = _connection(trace=tmobile_trace(), queue=8)
        http = VoxelHttp(conn)
        entry = tiny_prepared.manifest.entry(12, 0)
        delivery = http.fetch_segment(entry, force_reliable=True)
        assert delivery.lost_intervals == []
        assert not delivery.unreliable
