"""``repro report``: deterministic artifacts and the error-path contract.

Reports are pure functions of their input file — built twice, they are
byte-identical — and malformed input exits 2 with a one-line message
naming the offending line, never a traceback.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments.chaos import chaos_rows_to_jsonl, run_chaos
from repro.obs import events as ev
from repro.obs.events import SchemaError
from repro.obs.report import build_report, render_markdown, report_to_json
from repro.obs.tracer import Tracer


@pytest.fixture(scope="module")
def chaos_jsonl(tiny_prepared, tmp_path_factory):
    rows = run_chaos(
        profiles=["resets", "stalls"], seeds=[0],
        base={"video": "tinytest"},
        prepared_map={"tinytest": tiny_prepared},
        rollup=True,
    )
    path = tmp_path_factory.mktemp("report") / "chaos.jsonl"
    path.write_text(chaos_rows_to_jsonl(rows))
    return str(path)


@pytest.fixture(scope="module")
def trace_jsonl(tiny_prepared, tmp_path_factory):
    from repro.abr import make_abr
    from repro.network.traces import get_trace
    from repro.player.session import SessionConfig, StreamingSession

    tracer = Tracer()
    session = StreamingSession(
        tiny_prepared,
        make_abr("abr_star", prepared=tiny_prepared),
        get_trace("constant:4", seed=0),
        SessionConfig(buffer_segments=2),
        tracer=tracer,
    )
    session.run()
    path = tmp_path_factory.mktemp("report") / "trace.jsonl"
    tracer.write_jsonl(str(path))
    return str(path)


# ---------------------------------------------------------------------------
# Builder.
# ---------------------------------------------------------------------------
class TestBuildReport:
    def test_trace_mode(self, trace_jsonl):
        report = build_report(trace_jsonl)
        assert report["report_version"] == 1
        assert report["source"]["kind"] == "trace"
        assert report["audit"]["ok"] is True
        assert report["rollup"]["sessions_seen"] == 1
        combined = report["attribution"]["combined"]
        assert set(combined["stall_seconds"]) == {
            "fault", "retry", "degraded", "bandwidth", "abr_overreach",
        }
        assert combined["ok"] is True

    def test_rows_mode_chaos(self, chaos_jsonl):
        report = build_report(chaos_jsonl)
        assert report["source"]["kind"] == "chaos"
        assert report["cells"]["count"] == 2
        assert set(report["profiles"]) == {"resets", "stalls"}
        assert report["audit"]["cells_audited"] == 2
        assert report["audit"]["ok"] is True
        # Per-row rollups merged into one fleet view.
        assert report["rollup"]["sessions_seen"] == 2

    def test_deterministic(self, chaos_jsonl, trace_jsonl):
        for path in (chaos_jsonl, trace_jsonl):
            first = build_report(path)
            second = build_report(path)
            assert report_to_json(first) == report_to_json(second)
            assert render_markdown(first) == render_markdown(second)

    def test_markdown_sections(self, chaos_jsonl):
        markdown = render_markdown(build_report(chaos_jsonl))
        for heading in ("# repro report", "## Fleet rollup",
                        "## Stall attribution", "## Cell distributions",
                        "## Fault-profile comparison",
                        "## Invariant audit"):
            assert heading in markdown
        assert "Partition law holds" in markdown

    def test_empty_input_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n")
        with pytest.raises(SchemaError):
            build_report(str(path))

    def test_unknown_shape_names_line(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('\n{"neither": true}\n')
        with pytest.raises(SchemaError, match="line 2"):
            build_report(str(path))


# ---------------------------------------------------------------------------
# CLI surface.
# ---------------------------------------------------------------------------
class TestReportCli:
    def test_writes_markdown_and_json(self, chaos_jsonl, tmp_path, capsys):
        md_path = tmp_path / "report.md"
        json_path = tmp_path / "report.json"
        rc = main(["report", chaos_jsonl, "--out", str(md_path),
                   "--json-out", str(json_path), "--check"])
        assert rc == 0
        assert md_path.read_text().startswith("# repro report")
        loaded = json.loads(json_path.read_text())
        assert loaded["audit"]["ok"] is True
        captured = capsys.readouterr()
        assert str(md_path) in captured.err

    def test_stdout_default(self, trace_jsonl, capsys):
        rc = main(["report", trace_jsonl])
        assert rc == 0
        assert "## Stall attribution" in capsys.readouterr().out

    def test_json_flag(self, trace_jsonl, capsys):
        rc = main(["--json", "report", trace_jsonl])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"]["kind"] == "trace"


# ---------------------------------------------------------------------------
# Error-path contract: exit 2, one line, names the line number.
# ---------------------------------------------------------------------------
class TestErrorContract:
    def _write_truncated_trace(self, tmp_path):
        event = ev.TraceEvent(
            seq=0, t=0.0, type=ev.SESSION_START,
            fields=dict(video="tinytest", abr="abr_star", num_segments=6,
                        segment_duration=2.0, buffer_capacity_s=4.0,
                        backend="round", partially_reliable=True),
        )
        path = tmp_path / "truncated.jsonl"
        path.write_text(event.to_json() + "\n" + '{"seq": 1, "t":\n')
        return str(path)

    def test_report_malformed_exits_2_with_line(self, tmp_path, capsys):
        path = self._write_truncated_trace(tmp_path)
        rc = main(["report", path])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        lines = [l for l in captured.err.splitlines() if l]
        assert len(lines) == 1
        assert "cannot read report input" in lines[0]
        assert "line 2" in lines[0]
        assert "Traceback" not in captured.err

    def test_trace_malformed_exits_2_with_line(self, tmp_path, capsys):
        path = self._write_truncated_trace(tmp_path)
        rc = main(["trace", path])
        assert rc == 2
        captured = capsys.readouterr()
        lines = [l for l in captured.err.splitlines() if l]
        assert len(lines) == 1
        assert "cannot read trace" in lines[0]
        assert "line 2" in lines[0]
        assert "Traceback" not in captured.err

    def test_trace_check_malformed_exits_2(self, tmp_path, capsys):
        path = self._write_truncated_trace(tmp_path)
        rc = main(["trace", path, "--check"])
        assert rc == 2
        assert "line 2" in capsys.readouterr().err

    def test_report_missing_file_exits_2(self, tmp_path, capsys):
        rc = main(["report", str(tmp_path / "absent.jsonl")])
        assert rc == 2
        assert "cannot read report input" in capsys.readouterr().err
