"""Tests for the playback buffer, metrics, and streaming session."""

import numpy as np
import pytest

from repro.abr import make_abr
from repro.network.traces import constant_trace, tmobile_trace
from repro.player.buffer import PlaybackBuffer
from repro.player.metrics import (
    SegmentRecord,
    SessionMetrics,
    percentile_across,
    stderr_across,
)
from repro.player.session import SessionConfig, StreamingSession


class TestBuffer:
    def test_push_and_drain(self):
        buf = PlaybackBuffer(capacity_s=8.0)
        buf.push_segment(4.0)
        stall = buf.drain(2.0)
        assert stall == 0.0
        assert buf.level_s == pytest.approx(2.0)
        assert buf.played_s == pytest.approx(2.0)

    def test_drain_beyond_level_stalls(self):
        buf = PlaybackBuffer(capacity_s=8.0)
        buf.push_segment(1.0)
        stall = buf.drain(3.0)
        assert stall == pytest.approx(2.0)
        assert buf.level_s == 0.0

    def test_room_semantics(self):
        buf = PlaybackBuffer(capacity_s=8.0)
        assert buf.room_for(4.0)
        buf.push_segment(8.0)
        assert not buf.room_for(4.0)
        assert buf.time_until_room(4.0) == pytest.approx(4.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(capacity_s=0.0)
        buf = PlaybackBuffer(capacity_s=4.0)
        with pytest.raises(ValueError):
            buf.drain(-1.0)
        with pytest.raises(ValueError):
            buf.push_segment(-1.0)


def _record(index=0, quality=5, score=0.95, pristine=0.99, stall=0.0,
            requested=1000, delivered=1000, total=1000, skipped=0,
            residual=0):
    return SegmentRecord(
        index=index, quality=quality, target_bytes=None,
        bytes_requested=requested, bytes_delivered=delivered,
        total_bytes=total, download_time=1.0, stall_time=stall,
        score=score, pristine_score=pristine, skipped_frame_count=skipped,
        dropped_referenced_frames=0, corruption_frames=0, lost_bytes=0,
        repaired_bytes=0, residual_loss_bytes=residual, restarts=0,
        truncated=False, wasted_bytes=0,
    )


class TestMetrics:
    def _metrics(self, records, stall=0.0):
        return SessionMetrics(
            video="v", abr="a", records=records, startup_delay=1.0,
            total_stall=stall, media_duration=len(records) * 4.0,
            wall_duration=len(records) * 4.0 + stall,
        )

    def test_buf_ratio(self):
        m = self._metrics([_record(i) for i in range(10)], stall=4.0)
        assert m.buf_ratio == pytest.approx(0.1)

    def test_mean_and_median_ssim(self):
        m = self._metrics([_record(score=0.9), _record(score=1.0)])
        assert m.mean_ssim == pytest.approx(0.95)
        assert m.median_ssim == pytest.approx(0.95)

    def test_bitrates(self):
        m = self._metrics([_record(delivered=2_000_000, total=2_500_000)])
        assert m.avg_bitrate_kbps == pytest.approx(2_000_000 * 8 / 4 / 1e3)
        assert m.avg_nominal_bitrate_kbps == pytest.approx(
            2_500_000 * 8 / 4 / 1e3
        )

    def test_data_skipped(self):
        m = self._metrics(
            [_record(requested=750, total=1000), _record(requested=1000)]
        )
        assert m.data_skipped_fraction == pytest.approx(250 / 2000)

    def test_residual_loss(self):
        m = self._metrics([_record(requested=1000, residual=10)])
        assert m.residual_loss_fraction == pytest.approx(0.01)

    def test_switches(self):
        m = self._metrics(
            [_record(0, quality=3), _record(1, quality=3),
             _record(2, quality=5), _record(3, quality=3)]
        )
        assert m.quality_switches == 2

    def test_perceptible_artifact_rate(self):
        m = self._metrics(
            [_record(score=0.99, pristine=0.99),
             _record(score=0.90, pristine=0.99)]
        )
        assert m.perceptible_artifact_rate == pytest.approx(0.5)

    def test_score_cdf_sorted(self):
        m = self._metrics([_record(score=0.9), _record(score=0.7)])
        assert list(m.score_cdf()) == [0.7, 0.9]

    def test_cross_session_aggregates(self):
        sessions = [
            self._metrics([_record()], stall=s) for s in (0.0, 1.0, 2.0)
        ]
        assert percentile_across(sessions, "buf_ratio", 50) == pytest.approx(
            1.0 / 4.0
        )
        assert stderr_across(sessions, "buf_ratio") > 0
        assert stderr_across(sessions[:1], "buf_ratio") == 0.0

    def test_empty_records(self):
        m = self._metrics([])
        assert m.mean_ssim == 0.0
        assert m.avg_bitrate_kbps == 0.0
        assert m.data_skipped_fraction == 0.0


class TestSession:
    def _run(self, prepared, abr_name="bola", trace=None, buf=2,
             pr=True, **cfg_kwargs):
        abr = make_abr(abr_name, prepared=prepared)
        config = SessionConfig(
            buffer_segments=buf, partially_reliable=pr, **cfg_kwargs
        )
        session = StreamingSession(
            prepared, abr,
            trace if trace is not None else constant_trace(10.0),
            config,
        )
        return session.run()

    def test_all_segments_streamed(self, tiny_prepared):
        metrics = self._run(tiny_prepared)
        assert len(metrics.records) == tiny_prepared.video.num_segments
        assert [r.index for r in metrics.records] == list(range(6))

    def test_no_stalls_on_fast_constant_link(self, tiny_prepared):
        metrics = self._run(tiny_prepared, trace=constant_trace(50.0))
        assert metrics.total_stall == 0.0
        assert metrics.buf_ratio == 0.0

    def test_startup_delay_recorded(self, tiny_prepared):
        metrics = self._run(tiny_prepared)
        assert metrics.startup_delay > 0

    def test_quality_ramps_up(self, tiny_prepared):
        metrics = self._run(tiny_prepared, trace=constant_trace(30.0))
        assert metrics.records[0].quality == 0  # safe start
        assert metrics.records[-1].quality > 5

    def test_wall_duration_at_least_media(self, tiny_prepared):
        metrics = self._run(tiny_prepared)
        # The wall clock covers all downloads; with a 2-segment buffer
        # the last (num_segments - buffer) segments gate playback.
        assert metrics.wall_duration > 0

    def test_slow_link_stalls(self, tiny_prepared):
        metrics = self._run(
            tiny_prepared, abr_name="tput", trace=constant_trace(0.2), buf=1
        )
        assert metrics.total_stall > 0

    def test_plain_quic_never_loses(self, tiny_prepared):
        metrics = self._run(
            tiny_prepared, trace=tmobile_trace(), pr=False, buf=2
        )
        assert all(r.lost_bytes == 0 for r in metrics.records)
        assert all(r.corruption_frames == 0 for r in metrics.records)

    def test_quicstar_vanilla_bola_may_lose_but_keeps_playing(
        self, tiny_prepared
    ):
        metrics = self._run(
            tiny_prepared, trace=tmobile_trace(seed=2), pr=True, buf=2
        )
        assert len(metrics.records) == 6

    def test_voxel_rel_ablation_forces_reliability(self, tiny_prepared):
        metrics = self._run(
            tiny_prepared, abr_name="abr_star", trace=tmobile_trace(),
            force_reliable_payload=True,
        )
        assert all(r.lost_bytes == 0 for r in metrics.records)

    def test_selective_retx_can_be_disabled(self, tiny_prepared):
        metrics = self._run(
            tiny_prepared, abr_name="abr_star", trace=tmobile_trace(seed=1),
            selective_retransmission=False,
        )
        assert all(r.repaired_bytes == 0 for r in metrics.records)

    def test_abr_star_partial_downloads_happen(self, tiny_prepared):
        metrics = self._run(
            tiny_prepared, abr_name="abr_star",
            trace=constant_trace(3.0), buf=1,
        )
        # On a tight link ABR* uses virtual levels and/or truncation.
        assert any(
            r.target_bytes is not None or r.truncated
            for r in metrics.records
        ) or metrics.data_skipped_fraction >= 0

    def test_scores_match_decode_of_what_arrived(self, tiny_prepared):
        metrics = self._run(tiny_prepared, trace=constant_trace(50.0))
        for record in metrics.records:
            # Complete, loss-free segments score their pristine value.
            if (
                record.bytes_requested
                == tiny_prepared.manifest.entry(
                    record.quality, record.index
                ).total_bytes
                and record.lost_bytes == 0
            ):
                assert record.score == pytest.approx(
                    record.pristine_score, abs=1e-4
                )

    def test_deterministic(self, tiny_prepared):
        a = self._run(tiny_prepared, trace=tmobile_trace(seed=3))
        b = self._run(tiny_prepared, trace=tmobile_trace(seed=3))
        assert a.total_stall == b.total_stall
        assert [r.quality for r in a.records] == [r.quality for r in b.records]
        assert a.mean_ssim == b.mean_ssim

    def test_buffer_capacity_respected(self, tiny_prepared):
        session = StreamingSession(
            tiny_prepared,
            make_abr("bola", prepared=tiny_prepared),
            constant_trace(50.0),
            SessionConfig(buffer_segments=1),
        )
        metrics = session.run()
        # Level can briefly reach capacity + one in-flight segment.
        assert session.buffer.capacity_s == pytest.approx(4.0)
        assert metrics.total_stall == 0.0
