"""Fault-injection subsystem: spec, plan, resilience, and goldens.

The golden tests pin byte-exact fingerprints of fault-free runs (both
backends, plus a parallel sweep): the fault subsystem must be a strict
no-op when no faults are declared — same spec hashes, same traces, same
summaries as before the subsystem existed.
"""

import hashlib
import json

import pytest

from repro.core.api import stream_spec
from repro.core.build import StackBuilder
from repro.core.spec import ScenarioSpec
from repro.faults import (
    FAULTS,
    FaultSpec,
    build_plan,
    validate_fault_spec,
)
from repro.obs import events as ev
from repro.obs.invariants import TraceAuditor
from repro.obs.tracer import Tracer

# ---------------------------------------------------------------------------
# Golden fingerprints of fault-free behaviour.  These are the exact
# values produced by the seed revision of this subsystem; any drift
# means faults are no longer a strict opt-in.

GOLDEN_DEFAULT_SPEC_HASH = "5bafac3cc269"

GOLDEN_RUNS = {
    "round": {
        "spec_hash": "123e252e5dc8",
        "trace_sha": (
            "bc969067c1935c354533e46db85e68a8"
            "2e57d79e6e1201fb7ed8d017f1389536"
        ),
        "summary": {
            "avg_bitrate_kbps": 2610.773,
            "buf_ratio": 0.0,
            "data_skipped": 0.0,
            "mean_ssim": 0.9513439591308389,
            "median_ssim": 0.9786096870224119,
            "perceptible_artifact_rate": 0.0,
            "residual_loss": 0.00035914146849889945,
            "segments_with_drops": 5.0,
            "startup_delay": 0.42,
            "switches": 5.0,
            "wall_duration": 15.944246713219618,
        },
    },
    "packet": {
        "spec_hash": "b5ca742e2cb7",
        "trace_sha": (
            "5e1923b2bcc10c2c4adea75ab5cd1e4b"
            "e07f9a31606e28975a1bcd6bfb985094"
        ),
        "summary": {
            "avg_bitrate_kbps": 3103.5086666666666,
            "buf_ratio": 0.0,
            "data_skipped": 0.0,
            "mean_ssim": 0.9527646531634062,
            "median_ssim": 0.9820960913839789,
            "perceptible_artifact_rate": 0.0,
            "residual_loss": 0.0,
            "segments_with_drops": 1.0,
            "startup_delay": 0.3061625515170314,
            "switches": 5.0,
            "wall_duration": 16.343733636599616,
        },
    },
}

GOLDEN_SWEEP_SHA = (
    "3de47d4014ff132aa86f8c72b55b1a94"
    "1c6c4e7abdb5ec00e5894c564614c2ed"
)


class TestNoFaultGoldens:
    def test_default_spec_hash_unchanged(self):
        assert ScenarioSpec().spec_hash() == GOLDEN_DEFAULT_SPEC_HASH

    def test_absent_and_empty_faults_hash_identically(self):
        bare = ScenarioSpec()
        explicit_none = ScenarioSpec(faults=None)
        assert explicit_none.spec_hash() == bare.spec_hash()

    @pytest.mark.parametrize("backend", ("round", "packet"))
    def test_traces_byte_identical(self, tiny_prepared, backend):
        golden = GOLDEN_RUNS[backend]
        spec = ScenarioSpec(
            video="tinytest", abr="abr_star", trace="verizon",
            seed=3, buffer_segments=2, backend=backend,
        )
        assert spec.spec_hash() == golden["spec_hash"]
        tracer = Tracer()
        result = stream_spec(spec, prepared=tiny_prepared, tracer=tracer)
        sha = hashlib.sha256(
            (tracer.to_jsonl() + "\n").encode()
        ).hexdigest()
        assert sha == golden["trace_sha"]
        assert result.summary() == golden["summary"]
        # Fault-free runs must not leak resilience keys.
        for key in ("retries", "faults_injected", "request_timeouts"):
            assert key not in result.summary()

    def test_parallel_sweep_byte_identical(self, tiny_prepared):
        from repro.experiments.sweep import (
            SweepSpec, rows_to_jsonl, run_sweep,
        )

        sweep = SweepSpec(
            base={"video": "tinytest", "trace": "constant:6",
                  "buffer_segments": 2},
            grid={"abr": ["bola", "abr_star"]},
        )
        rows = run_sweep(
            sweep, workers=1, prepared_map={"tinytest": tiny_prepared}
        )
        sha = hashlib.sha256(rows_to_jsonl(rows).encode()).hexdigest()
        assert sha == GOLDEN_SWEEP_SHA


# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_round_trip(self):
        data = {
            "events": [
                {"kind": "blackout", "at": 3.0, "duration": 4.0},
                {"kind": "loss_burst", "count": 2, "rate": 0.2,
                 "duration": 3.0},
            ],
            "seed": 7,
        }
        spec = FaultSpec.from_dict(data)
        assert spec.to_dict() == data
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(json.dumps(spec.to_dict())) == data

    def test_seed_zero_omitted(self):
        spec = FaultSpec.from_dict({"events": [{"kind": "reset"}]})
        assert "seed" not in spec.to_dict()

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec field"):
            FaultSpec.from_dict({"events": [], "chaos": True})

    def test_clause_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="missing 'kind'"):
            FaultSpec.from_dict({"events": [{"at": 3.0}]})

    def test_non_numeric_param_rejected(self):
        with pytest.raises(ValueError, match="must be numeric"):
            FaultSpec.from_dict(
                {"events": [{"kind": "reset", "at": "soon"}]}
            )

    def test_unknown_kind_rejected_by_validation(self):
        spec = FaultSpec.from_dict({"events": [{"kind": "earthquake"}]})
        with pytest.raises(ValueError, match="unknown fault kind"):
            validate_fault_spec(spec)

    def test_validate_accepts_absent_spec(self):
        validate_fault_spec(None)

    def test_registry_lists_all_paper_fault_kinds(self):
        expected = {"blackout", "bandwidth_cliff", "rtt_spike",
                    "loss_burst", "reset", "server_stall"}
        assert expected <= set(FAULTS.names())


class TestSpecHashFolding:
    FAULTS_DICT = {"events": [{"kind": "blackout", "at": 3.0,
                               "duration": 4.0}]}

    def test_faults_change_hash_and_label(self):
        bare = ScenarioSpec()
        faulted = ScenarioSpec(faults=self.FAULTS_DICT)
        assert faulted.spec_hash() != bare.spec_hash()
        assert faulted.label().endswith("+faults")
        assert not bare.label().endswith("+faults")

    def test_faulted_spec_round_trips(self):
        spec = ScenarioSpec(
            faults=self.FAULTS_DICT, request_timeout_s=2.0,
            retry_budget=2, retry_backoff_s=0.25,
        )
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        assert clone.fault_spec() == spec.fault_spec()

    def test_resilience_knobs_neutral_at_defaults(self):
        assert ScenarioSpec(
            retry_budget=3, retry_backoff_s=0.5
        ).spec_hash() == GOLDEN_DEFAULT_SPEC_HASH
        assert ScenarioSpec(
            request_timeout_s=2.0
        ).spec_hash() != GOLDEN_DEFAULT_SPEC_HASH


# ---------------------------------------------------------------------------
class TestBuildPlan:
    def test_deterministic_per_seed(self):
        spec = FaultSpec.from_dict({"events": [
            {"kind": "blackout", "count": 2, "duration": 3.0},
            {"kind": "reset", "count": 2},
        ]})
        one = build_plan(spec, horizon=60.0, scenario_seed=5)
        two = build_plan(spec, horizon=60.0, scenario_seed=5)
        assert one.windows == two.windows
        other = build_plan(spec, horizon=60.0, scenario_seed=6)
        assert other.windows != one.windows

    def test_seeded_windows_inside_horizon(self):
        spec = FaultSpec.from_dict({"events": [
            {"kind": "blackout", "count": 3, "duration": 2.0},
        ]})
        plan = build_plan(spec, horizon=30.0, scenario_seed=1)
        assert len(plan.windows) == 3
        for window in plan.windows:
            assert 0.0 <= window.start < 30.0

    def test_empty_spec_builds_no_plan(self):
        assert build_plan(FaultSpec(), horizon=60.0, scenario_seed=0) is None
        assert build_plan(None, horizon=60.0, scenario_seed=0) is None


# ---------------------------------------------------------------------------
CHAOS_FAULTS = {"events": [
    {"kind": "blackout", "at": 3.0, "duration": 4.0},
    {"kind": "reset", "at": 9.0},
    {"kind": "server_stall", "at": 14.0, "duration": 4.0, "delay": 1.0},
    {"kind": "loss_burst", "at": 10.0, "duration": 3.0, "rate": 0.2},
]}


class TestResilientSession:
    @pytest.mark.parametrize("backend", ("round", "packet"))
    def test_faulted_run_is_audited_and_counted(
        self, tiny_prepared, backend
    ):
        spec = ScenarioSpec(
            video="tinytest", abr="abr_star", trace="verizon", seed=3,
            buffer_segments=2, backend=backend, faults=CHAOS_FAULTS,
            request_timeout_s=2.0, retry_budget=2,
        )
        auditor = TraceAuditor()
        tracer = Tracer(observers=[auditor.feed])
        result = stream_spec(spec, prepared=tiny_prepared, tracer=tracer)
        report = auditor.finalize()
        assert report.ok, [str(v) for v in report.violations]

        # Every planned fault surfaces as a fault_injected event.
        plan = StackBuilder(spec, prepared=tiny_prepared).fault_plan()
        injected = [
            e for e in tracer.events if e.type == ev.FAULT_INJECTED
        ]
        assert len(injected) == len(plan.windows)
        assert {e.fields["kind"] for e in injected} == {
            w.kind for w in plan.windows
        }

        summary = result.summary()
        assert summary["faults_injected"] == len(plan.windows)
        for key in ("request_timeouts", "connection_resets", "retries",
                    "degraded_segments", "backoff_s"):
            assert key in summary
        # The blackout against a 2 s deadline must provoke the retry
        # machinery at least once.
        assert summary["retries"] >= 1

    def test_retry_resumes_without_refetching(self, tiny_prepared):
        spec = ScenarioSpec(
            video="tinytest", abr="abr_star", trace="verizon", seed=3,
            buffer_segments=2, faults=CHAOS_FAULTS,
            request_timeout_s=2.0, retry_budget=2,
        )
        tracer = Tracer()
        stream_spec(spec, prepared=tiny_prepared, tracer=tracer)
        retries = [e for e in tracer.events if e.type == ev.RETRY]
        assert retries
        failures = {}
        for event in tracer.events:
            if event.type in (ev.REQUEST_TIMEOUT, ev.CONNECTION_RESET):
                failures[event.fields["segment"]] = event
            elif event.type == ev.RETRY:
                failure = failures.pop(event.fields["segment"])
                # Already-delivered bytes are never re-fetched: the
                # retry resumes exactly where the failure accounted to.
                assert (
                    event.fields["resume_bytes"]
                    == failure.fields["accounted_bytes"]
                )
                assert event.fields["backoff_s"] >= 0.0

    def test_exhausted_budget_degrades_floor_then_skip(
        self, tiny_prepared
    ):
        # A permanent blackout with a tight deadline and a 1-retry
        # budget: every segment times out, floors to quality 0, times
        # out again, and is skipped — the session must still terminate
        # with every segment accounted.
        spec = ScenarioSpec(
            video="tinytest", abr="abr_star", trace="constant:6", seed=0,
            buffer_segments=2,
            faults={"events": [
                {"kind": "blackout", "at": 0.2, "duration": 1000.0},
            ]},
            request_timeout_s=1.0, retry_budget=1, retry_backoff_s=0.1,
        )
        auditor = TraceAuditor()
        tracer = Tracer(observers=[auditor.feed])
        result = stream_spec(spec, prepared=tiny_prepared, tracer=tracer)
        report = auditor.finalize()
        assert report.ok, [str(v) for v in report.violations]

        degraded = [e for e in tracer.events if e.type == ev.DEGRADED]
        modes = {e.fields["mode"] for e in degraded}
        assert "floor" in modes and "skip" in modes
        summary = result.summary()
        assert summary["degraded_segments"] >= 1
        assert len(result.metrics.records) == 6
        skipped = [r for r in result.metrics.records if r.degraded == "skip"]
        assert skipped
        for record in skipped:
            assert record.score == 0.0
            assert record.bytes_delivered == 0


class TestChaosSweep:
    def test_chaos_rows_deterministic_across_workers(self, tiny_prepared):
        from repro.experiments.chaos import chaos_rows_to_jsonl, run_chaos

        kwargs = dict(
            profiles=["resets"], seeds=(0, 1),
            base={"video": "tinytest", "buffer_segments": 2},
            prepared_map={"tinytest": tiny_prepared},
        )
        serial = run_chaos(workers=1, **kwargs)
        parallel = run_chaos(workers=2, **kwargs)
        assert chaos_rows_to_jsonl(serial) == chaos_rows_to_jsonl(parallel)
        for row in serial:
            assert row["audit"]["ok"], row["audit"]["violations"]
            assert row["profile"] == "resets"

    def test_unknown_profile_rejected(self, tiny_prepared):
        from repro.experiments.chaos import run_chaos

        with pytest.raises(KeyError, match="unknown chaos profile"):
            run_chaos(
                profiles=["nope"], seeds=(0,),
                base={"video": "tinytest"},
                prepared_map={"tinytest": tiny_prepared},
            )
