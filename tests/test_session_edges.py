"""Edge-case tests for the streaming session internals."""

import numpy as np
import pytest

from repro.abr import make_abr
from repro.abr.base import (
    ABRAlgorithm,
    ControlAction,
    Decision,
    DecisionContext,
    DownloadProgress,
)
from repro.network.traces import NetworkTrace, constant_trace, tmobile_trace
from repro.player.session import SessionConfig, StreamingSession


class FixedABR(ABRAlgorithm):
    """Always requests a fixed quality; optionally a byte target."""

    name = "fixed"

    def __init__(self, quality=5, target_bytes=None, unreliable=True,
                 wait_first=0.0):
        self.quality = quality
        self.target_bytes = target_bytes
        self.unreliable = unreliable
        self._wait_first = wait_first

    def choose(self, ctx: DecisionContext) -> Decision:
        wait, self._wait_first = self._wait_first, 0.0
        return Decision(
            quality=self.quality,
            target_bytes=self.target_bytes,
            unreliable=self.unreliable,
            wait_s=wait,
        )


class RestartingABR(FixedABR):
    """Restarts the first download once, then continues."""

    def __init__(self, quality=8, restart_to=2):
        super().__init__(quality=quality)
        self.restart_to = restart_to
        self._restarted = False

    def control(self, progress: DownloadProgress) -> ControlAction:
        if not self._restarted and progress.quality == self.quality:
            self._restarted = True
            return ControlAction.restart(self.restart_to)
        return ControlAction.cont()


class TruncatingABR(FixedABR):
    """Truncates every download at half its total."""

    def control(self, progress: DownloadProgress) -> ControlAction:
        if progress.bytes_sent >= progress.bytes_total // 2:
            return ControlAction.truncate(at_bytes=progress.bytes_sent)
        return ControlAction.cont()


def _session(prepared, abr, trace=None, **cfg):
    config = SessionConfig(**{"buffer_segments": 2, **cfg})
    return StreamingSession(
        prepared, abr,
        trace if trace is not None else constant_trace(10.0),
        config,
    )


class TestRestartPath:
    def test_restart_is_recorded(self, tiny_prepared):
        metrics = _session(tiny_prepared, RestartingABR()).run()
        restarted = [r for r in metrics.records if r.restarts > 0]
        assert len(restarted) == 1
        record = restarted[0]
        assert record.quality == 2  # final quality is the restart target
        assert record.wasted_bytes >= 0

    def test_restart_still_delivers_segment(self, tiny_prepared):
        metrics = _session(tiny_prepared, RestartingABR()).run()
        assert len(metrics.records) == 6
        assert all(r.bytes_delivered > 0 for r in metrics.records)


class TestTruncationPath:
    def test_truncation_flag_and_skip(self, tiny_prepared):
        metrics = _session(tiny_prepared, TruncatingABR(quality=9)).run()
        truncated = [r for r in metrics.records if r.truncated]
        assert truncated, "every segment should have been truncated"
        for record in truncated:
            assert record.bytes_requested < record.total_bytes
            assert record.skipped_frame_count > 0
            assert record.score <= record.pristine_score + 1e-9

    def test_truncation_never_cuts_reliable_part(self, tiny_prepared):
        metrics = _session(tiny_prepared, TruncatingABR(quality=9)).run()
        for record in metrics.records:
            entry = tiny_prepared.manifest.entry(record.quality, record.index)
            assert record.bytes_requested >= entry.reliable_size


class TestWaitPath:
    def test_initial_wait_consumes_time(self, tiny_prepared):
        waiting = _session(tiny_prepared, FixedABR(wait_first=2.0)).run()
        direct = _session(tiny_prepared, FixedABR()).run()
        assert waiting.wall_duration >= direct.wall_duration


class TestTargetBytes:
    def test_explicit_target_respected(self, tiny_prepared):
        entry = tiny_prepared.manifest.entry(12, 0)
        target = entry.quality_points[-1].bytes
        abr = FixedABR(quality=12, target_bytes=target)
        metrics = _session(tiny_prepared, abr, constant_trace(50.0)).run()
        for record in metrics.records:
            assert record.bytes_requested <= max(
                target,
                tiny_prepared.manifest.entry(12, record.index).reliable_size,
            ) + 1

    def test_oversized_target_clamped(self, tiny_prepared):
        abr = FixedABR(quality=3, target_bytes=10**12)
        metrics = _session(tiny_prepared, abr).run()
        for record in metrics.records:
            assert record.bytes_requested == record.total_bytes


class TestStallAccounting:
    def test_stalls_sum_matches_records(self, tiny_prepared):
        abr = FixedABR(quality=12, unreliable=False)
        metrics = _session(
            tiny_prepared, abr, constant_trace(3.0), buffer_segments=1,
            partially_reliable=False,
        ).run()
        assert metrics.total_stall > 0
        # Per-record stalls (excluding idle-time stalls, which are
        # impossible here) sum to the session total.
        assert sum(r.stall_time for r in metrics.records) == pytest.approx(
            metrics.total_stall, rel=1e-6
        )

    def test_startup_not_counted_as_stall(self, tiny_prepared):
        metrics = _session(
            tiny_prepared, FixedABR(quality=0), constant_trace(50.0)
        ).run()
        assert metrics.startup_delay > 0
        assert metrics.total_stall == 0.0
        assert metrics.records[0].stall_time == 0.0


class TestThroughputSampling:
    def test_estimates_converge_to_link_rate(self, tiny_prepared):
        session = _session(
            tiny_prepared, FixedABR(quality=9), constant_trace(10.0)
        )
        session.run()
        estimate = session.throughput_estimate
        assert estimate == pytest.approx(10e6, rel=0.25)

    def test_samples_are_plausible_rates(self, tiny_prepared):
        session = _session(
            tiny_prepared, FixedABR(quality=0), constant_trace(10.0)
        )
        session.run()
        # Q0 segments are small; any recorded samples must still be
        # positive and bounded by the link rate (plus rounding slack).
        assert len(session._throughput_samples) <= 6
        for sample in session._throughput_samples:
            assert 0 < sample <= 12e6


class TestCrossTrafficSession:
    def test_session_with_cross_demand(self, tiny_prepared):
        demand = NetworkTrace("cross", np.full(400, 12.0))
        abr = make_abr("bola", prepared=tiny_prepared)
        config = SessionConfig(buffer_segments=2, partially_reliable=False)
        session = StreamingSession(
            tiny_prepared, abr, constant_trace(20.0), config,
            cross_demand=demand,
        )
        metrics = session.run()
        # ~8 Mbps left for the video: it streams, at reduced quality.
        assert len(metrics.records) == 6
        assert metrics.avg_bitrate_kbps < 9000
