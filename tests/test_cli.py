"""Tests for the command-line interface and the report renderer."""

import json

import numpy as np
import pytest

from repro.cli import _FIGURES, build_parser, main
from repro.experiments.report import (
    ascii_cdf,
    format_table,
    render,
    summarize_cdf,
)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stream_defaults(self):
        args = build_parser().parse_args(["stream", "bbb"])
        assert args.abr == "abr_star"
        assert args.trace == "verizon"
        assert args.buffer == 2
        assert not args.plain_quic

    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "fig6", "--light"])
        assert args.name == "fig6"
        assert args.light


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bbb" in out and "abr_star" in out and "tmobile" in out
        assert "blackout" in out and "server_stall" in out
        assert "outage_level" in out

    def test_list_json(self, capsys):
        assert main(["--json", "list"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "videos" in data and "p10" in data["videos"]

    def test_stream(self, capsys):
        code = main([
            "stream", "bbb", "--trace", "constant:10.5", "--buffer", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bufRatio" in out and "mean SSIM" in out

    def test_stream_json(self, capsys):
        code = main([
            "--json", "stream", "bbb", "--trace", "constant:10.5",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert "buf_ratio" in data and "mean_ssim" in data

    def test_stream_plain_quic_and_safety(self, capsys):
        code = main([
            "stream", "bbb", "--trace", "constant:10.5", "--plain-quic",
        ])
        assert code == 0
        code = main([
            "stream", "bbb", "--trace", "constant:10.5",
            "--bandwidth-safety", "0.9",
        ])
        assert code == 0

    def test_stream_with_faults_prints_resilience_block(self, capsys):
        code = main([
            "stream", "bbb", "--trace", "constant:10.5", "--buffer", "2",
            "--faults",
            '{"events": [{"kind": "reset", "at": 6.0}]}',
            "--timeout", "3", "--check-invariants",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "retries" in captured.out
        assert "degraded segs" in captured.out
        assert "11 invariants checked" in captured.err

    def test_stream_without_faults_has_no_resilience_block(self, capsys):
        assert main(["stream", "bbb", "--trace", "constant:10.5"]) == 0
        assert "retries" not in capsys.readouterr().out

    def test_stream_bad_fault_spec_exits_2(self, capsys):
        code = main([
            "stream", "bbb", "--trace", "constant:10.5",
            "--faults", "{not json",
        ])
        assert code == 2
        assert "fault spec" in capsys.readouterr().err
        code = main([
            "stream", "bbb", "--trace", "constant:10.5",
            "--faults", '{"events": [{"kind": "quake"}]}',
        ])
        assert code == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_faults_list_profiles(self, capsys):
        assert main(["faults", "--list-profiles"]) == 0
        out = capsys.readouterr().out
        assert "mixed" in out and "blackouts" in out

    def test_faults_chaos_cell(self, capsys):
        code = main([
            "faults", "--profiles", "resets", "--seeds", "0",
            "--trace", "constant:10.5", "--check-invariants",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 cells, 1 audits clean" in out

    def test_faults_unknown_profile_exits_2(self, capsys):
        code = main(["faults", "--profiles", "nope", "--seeds", "0"])
        assert code == 2
        assert "unknown chaos profile" in capsys.readouterr().err

    def test_prepare(self, capsys):
        assert main(["prepare", "bbb"]) == 0
        out = capsys.readouterr().out
        assert "13 levels" in out
        assert "virtual levels" in out

    def test_compare(self, capsys):
        code = main([
            "compare", "bbb", "--trace", "constant:8", "--reps", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BOLA/QUIC" in out and "VOXEL" in out

    def test_figure_light(self, capsys):
        assert main(["figure", "fig15", "--light"]) == 0
        out = capsys.readouterr().out
        assert "fig15" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "nope"]) == 2

    def test_survey(self, capsys):
        code = main(["survey", "--clips", "3", "--participants", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "prefer VOXEL" in out

    def test_figure_registry_names_resolve(self):
        from repro.experiments import figures as figures_module
        from repro.experiments.figures import __dict__ as names

        for key, (func_name, kwargs) in _FIGURES.items():
            assert hasattr(figures_module, func_name), func_name
            assert isinstance(kwargs, dict)


class TestReport:
    def test_format_table_alignment(self):
        rows = [{"a": 1.23456, "b": "x"}, {"a": 2.0, "b": "yy"}]
        text = format_table(rows, ["a", "b"], title="T")
        assert "=== T ===" in text
        assert text.count("\n") >= 3

    def test_format_table_missing_key(self):
        text = format_table([{"a": 1.0}], ["a", "missing"])
        assert "missing" in text

    def test_summarize_cdf(self):
        cdf = {"x": np.array([1.0, 2.0, 3.0]), "y": np.array([0.3, 0.6, 1.0])}
        summary = summarize_cdf(cdf)
        assert "p50=2" in summary and "n=3" in summary
        assert summarize_cdf({"x": np.array([]), "y": np.array([])}) == "(empty)"

    def test_ascii_cdf(self):
        cdf = {"x": np.linspace(0, 10, 50), "y": np.linspace(0, 1, 50)}
        plot = ascii_cdf(cdf, width=20, label="demo")
        assert "demo" in plot
        assert plot.count("|") >= 22  # 11 decile rows, two pipes each

    def test_render_row_list(self):
        text = render("x", [{"a": 1, "b": 2.5}])
        assert "### x ###" in text and "2.5" in text

    def test_render_composite(self):
        result = {
            "rows": [{"a": 1}],
            "cdfs": {"s": {"x": np.array([1.0]), "y": np.array([1.0])}},
        }
        text = render("combo", result)
        assert "s:" in text

    def test_render_nested(self):
        result = {
            "grp": {
                "cdf": {"x": np.array([1.0, 2.0]), "y": np.array([0.5, 1.0])},
                "scalar": 3.0,
                "arr": np.array([1.0, 2.0, 3.0]),
            },
            "top": np.array([5.0]),
        }
        text = render("nested", result)
        assert "grp:" in text and "scalar: 3" in text and "top:" in text


class TestObservabilityCli:
    def test_trace_out_and_inspect(self, tmp_path, capsys):
        path = tmp_path / "session.jsonl"
        code = main([
            "stream", "bbb", "--trace", "constant:10.5",
            "--trace-out", str(path),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "wrote" in captured.err and path.exists()

        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "schema v1" in out and "bufRatio" in out

        assert main(["trace", str(path), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "per-segment timeline" in out

        assert main(["trace", str(path), "--type", "abr_decision",
                     "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count('"type":"abr_decision"') == 2

    def test_trace_json_summary(self, tmp_path, capsys):
        path = tmp_path / "session.jsonl"
        main(["stream", "bbb", "--trace", "constant:10.5",
              "--trace-out", str(path)])
        capsys.readouterr()
        assert main(["--json", "trace", str(path)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["schema_version"] == 1
        assert data["session"]["video"] == "bbb"

    def test_trace_missing_file(self, capsys):
        assert main(["trace", "/nonexistent/nope.jsonl"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_trace_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        assert main(["trace", str(bad)]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_stream_metrics_flag(self, capsys):
        from repro.obs import enable_profiling, reset_registry

        reset_registry()
        try:
            code = main([
                "stream", "bbb", "--trace", "constant:10.5", "--metrics",
            ])
            assert code == 0
            out = capsys.readouterr().out
            assert "=== metrics ===" in out
            assert "transport.rounds" in out
            assert "=== timing ===" in out
            assert "timing.decode_segment" in out
        finally:
            enable_profiling(False)
            reset_registry()

    def test_unknown_video_exits_2(self, capsys):
        assert main(["stream", "nosuch"]) == 2
        err = capsys.readouterr().err
        assert "unknown video" in err and "Traceback" not in err

    def test_unknown_abr_exits_2(self, capsys):
        assert main(["stream", "bbb", "--abr", "nosuch"]) == 2
        assert "unknown ABR" in capsys.readouterr().err

    def test_unknown_trace_exits_2(self, capsys):
        assert main(["stream", "bbb", "--trace", "nosuch"]) == 2
        assert "unknown trace" in capsys.readouterr().err

    def test_unknown_video_in_prepare_exits_2(self, capsys):
        assert main(["prepare", "nosuch"]) == 2
        assert "unknown video" in capsys.readouterr().err


class TestFleetCli:
    _ARGS = [
        "fleet", "bbb", "--clients", "4", "--shards", "2",
        "--trace", "constant:30", "--buffer", "2",
    ]

    def test_fleet_report(self, capsys):
        assert main(self._ARGS) == 0
        out = capsys.readouterr().out
        assert "fleet" in out and "Jain" in out
        assert "fleet hash" in out

    def test_fleet_json_and_out(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        code = main(["--json"] + self._ARGS + ["--out", str(path)])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["clients"] == 4
        assert len(data["shards"]) == 2
        assert len(data["fleet_hash"]) == 16
        on_disk = json.loads(path.read_text())
        assert on_disk["fleet_hash"] == data["fleet_hash"]

    def test_fleet_spec_json_overrides_flags(self, capsys):
        spec = json.dumps({
            "clients": 4, "shards": 2, "trace": "constant:30",
        })
        code = main(["--json", "fleet", "--spec", spec])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["clients"] == 4

    def test_fleet_bad_spec_exits_2(self, capsys):
        assert main(["fleet", "--spec", "{\"shardz\": 3}"]) == 2
        assert "unknown" in capsys.readouterr().err.lower()
