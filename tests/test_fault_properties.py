"""Property-based chaos: randomized fault schedules stay lawful.

Whatever faults hypothesis throws at the stack — random kinds, random
placements, random budgets, either backend — every session must
terminate, every planned fault must surface as a ``fault_injected``
trace event, and the full invariant catalog (retry accounting included)
must hold on the resulting trace.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.api import stream_spec
from repro.core.build import StackBuilder
from repro.core.spec import ScenarioSpec
from repro.obs import events as ev
from repro.obs.invariants import MultiSessionAuditor, TraceAuditor
from repro.obs.tracer import Tracer

# The tiny fixture plays ~24 s of media; place faults inside that.
_HORIZON = 22.0

_CLAUSES = st.one_of(
    st.fixed_dictionaries({
        "kind": st.just("blackout"),
        "at": st.floats(0.0, _HORIZON),
        "duration": st.floats(0.5, 5.0),
    }),
    st.fixed_dictionaries({
        "kind": st.just("bandwidth_cliff"),
        "at": st.floats(0.0, _HORIZON),
        "duration": st.floats(1.0, 8.0),
        "factor": st.floats(0.05, 0.5),
    }),
    st.fixed_dictionaries({
        "kind": st.just("rtt_spike"),
        "at": st.floats(0.0, _HORIZON),
        "duration": st.floats(0.5, 4.0),
        "extra": st.floats(0.05, 0.5),
    }),
    st.fixed_dictionaries({
        "kind": st.just("loss_burst"),
        "at": st.floats(0.0, _HORIZON),
        "duration": st.floats(0.5, 4.0),
        "rate": st.floats(0.05, 0.5),
    }),
    st.fixed_dictionaries({
        "kind": st.just("reset"),
        "at": st.floats(0.0, _HORIZON),
    }),
    st.fixed_dictionaries({
        "kind": st.just("server_stall"),
        "at": st.floats(0.0, _HORIZON),
        "duration": st.floats(1.0, 5.0),
        "delay": st.floats(0.2, 1.5),
    }),
)

_SCHEDULES = st.fixed_dictionaries({
    "events": st.lists(_CLAUSES, min_size=1, max_size=4),
})


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    faults=_SCHEDULES,
    seed=st.integers(0, 7),
    backend=st.sampled_from(["round", "packet"]),
    retry_budget=st.integers(0, 3),
)
def test_random_schedules_keep_all_invariants(
    tiny_prepared, faults, seed, backend, retry_budget
):
    spec = ScenarioSpec(
        video="tinytest", abr="abr_star", trace="verizon", seed=seed,
        buffer_segments=2, backend=backend, faults=faults,
        request_timeout_s=2.0, retry_budget=retry_budget,
        retry_backoff_s=0.2,
    )
    auditor = TraceAuditor()
    tracer = Tracer(observers=[auditor.feed])
    result = stream_spec(spec, prepared=tiny_prepared, tracer=tracer)
    report = auditor.finalize()
    assert report.ok, [str(v) for v in report.violations]

    # Every planned fault window surfaces as exactly one trace event.
    plan = StackBuilder(spec, prepared=tiny_prepared).fault_plan()
    injected = [e for e in tracer.events if e.type == ev.FAULT_INJECTED]
    assert len(injected) == len(plan.windows)

    # The session terminated with every segment accounted for.
    assert len(result.metrics.records) == 6


@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    faults=_SCHEDULES,
    seed=st.integers(0, 5),
)
def test_same_schedule_same_bytes(tiny_prepared, faults, seed):
    """Fault runs are reproducible: same spec, byte-identical trace."""
    spec = ScenarioSpec(
        video="tinytest", abr="abr_star", trace="verizon", seed=seed,
        buffer_segments=2, faults=faults,
        request_timeout_s=2.0, retry_budget=2,
    )
    traces = []
    for _ in range(2):
        tracer = Tracer()
        stream_spec(spec, prepared=tiny_prepared, tracer=tracer)
        traces.append(tracer.to_jsonl())
    assert traces[0] == traces[1]


@pytest.mark.parametrize("backend", ("round", "packet"))
def test_multiclient_chaos_audits_clean(tiny_prepared, backend):
    """Shared-bottleneck chaos: substrate faults hit every client once,
    and the interleaved trace passes the multi-session audit (per-session
    laws + shared-link conservation + retry accounting)."""
    from repro.experiments.multiclient import ClientSpec, run_multiclient

    specs = [
        ClientSpec(abr="abr_star", video="tinytest",
                   partially_reliable=True, buffer_segments=2),
        ClientSpec(abr="bola", video="tinytest",
                   partially_reliable=False, buffer_segments=2),
    ]
    auditor = MultiSessionAuditor()
    tracer = Tracer(observers=[auditor.feed])
    result = run_multiclient(
        specs,
        trace="constant:12",
        seed=1,
        backend=backend,
        tracer=tracer,
        prepared_map={"tinytest": tiny_prepared},
        faults={"events": [
            {"kind": "blackout", "at": 4.0, "duration": 3.0},
            {"kind": "reset", "at": 10.0},
            {"kind": "loss_burst", "at": 8.0, "duration": 2.0,
             "rate": 0.2},
        ]},
        request_timeout_s=2.0,
        retry_budget=2,
    )
    report = auditor.finalize()
    assert report.ok, [str(v) for v in report.violations]
    assert len(result.clients) == 2
    for client in result.clients:
        assert len(client.metrics.records) == 6
    # The run-level plan is announced once per session.
    injected = [e for e in tracer.events if e.type == ev.FAULT_INJECTED]
    assert injected
