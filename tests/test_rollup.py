"""Streaming rollups: reservoir exactness, sampling, fork determinism.

The rollup must be a pure streaming fold: percentiles byte-identical to
a full-buffer computation below the reservoir threshold, head-sampling
a pure function of (session id, seed) so any worker count selects the
same sessions, and merge() associative so per-cell rollups carried
across a fork boundary fold to the single-pass answer.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.chaos import chaos_rows_to_jsonl, run_chaos
from repro.obs import events as ev
from repro.obs.events import TraceEvent
from repro.obs.metrics import Histogram
from repro.obs.rollup import (
    TraceRollup,
    format_rollup,
    iter_trace_events,
    merge_rollups,
    session_sample_key,
    session_sampled,
)
from repro.obs.tracer import StreamingTracer, Tracer


def _event(seq: int, t: float, type_: str, **fields) -> TraceEvent:
    event = TraceEvent(seq=seq, t=t, type=type_, fields=fields)
    event.validate()
    return event


def _session(sid: str, stalls, start_seq: int = 0, qoe: float = 0.9):
    """A minimal synthetic session: start, stalls, end."""
    seq = start_seq
    events = [_event(seq, 0.0, ev.SESSION_START, video="tinytest",
                     abr="abr_star", num_segments=3, segment_duration=2.0,
                     buffer_capacity_s=4.0, backend="round",
                     partially_reliable=True, session_id=sid)]
    t = 1.0
    for stall in stalls:
        seq += 1
        t += stall
        events.append(_event(seq, t, ev.STALL, duration=stall, segment=0,
                             session_id=sid))
    seq += 1
    events.append(_event(seq, t + 1.0, ev.SESSION_END,
                         buf_ratio=sum(stalls) / 10.0,
                         total_stall=sum(stalls), startup_delay=0.4,
                         mean_score=qoe, segments=3, session_id=sid))
    return events


def _nearest_rank(values, q: float) -> float:
    ordered = sorted(values)
    rank = max(int(math.ceil(q / 100.0 * len(ordered))), 1)
    return ordered[rank - 1]


# ---------------------------------------------------------------------------
# Exactness below the reservoir threshold.
# ---------------------------------------------------------------------------
class TestPercentileExactness:
    def test_matches_full_buffer_below_reservoir(self):
        stalls = [((i * 2654435761) % 997) / 100.0 + 0.01
                  for i in range(500)]
        rollup = TraceRollup()
        for event in _session("s0", stalls):
            rollup.feed(event)
        summary = rollup.summary()
        dist = summary["stall_seconds"]
        assert dist["count"] == len(stalls)
        assert dist["sum"] == pytest.approx(sum(stalls))
        for q, key in ((50, "p50"), (90, "p90"), (99, "p99"),
                       (99.9, "p999")):
            assert dist[key] == _nearest_rank(stalls, q)
            assert rollup.percentile("stall_seconds", q) == \
                _nearest_rank(stalls, q)

    def test_histogram_state_roundtrip_preserves_percentiles(self):
        hist = Histogram()
        for i in range(300):
            hist.observe(float((i * 7919) % 101))
        clone = Histogram.from_state(hist.state_dict())
        for q in (50, 90, 99, 99.9):
            assert clone.percentile(q) == hist.percentile(q)
        assert clone.summary() == hist.summary()

    def test_unknown_distribution_rejected(self):
        with pytest.raises(KeyError):
            TraceRollup().percentile("nope", 50)


# ---------------------------------------------------------------------------
# Head-sampling: pure function of (session id, seed).
# ---------------------------------------------------------------------------
class TestSampling:
    def test_sample_key_deterministic_and_uniform(self):
        keys = [session_sample_key(f"c{i}", seed=3) for i in range(200)]
        assert keys == [session_sample_key(f"c{i}", seed=3)
                        for i in range(200)]
        assert all(0.0 <= k < 1.0 for k in keys)
        # A different seed reshuffles the sampled set.
        assert keys != [session_sample_key(f"c{i}", seed=4)
                        for i in range(200)]

    def test_rate_edges(self):
        assert session_sampled("any", 1.0)
        assert session_sampled("any", 1.5)
        assert not session_sampled("any", 0.0)
        assert not session_sampled("any", -1.0)

    def test_sampled_set_independent_of_arrival_order(self):
        ids = [f"c{i}" for i in range(64)]
        picked = {sid for sid in ids if session_sampled(sid, 0.5, seed=1)}
        reversed_picked = {
            sid for sid in reversed(ids) if session_sampled(sid, 0.5, seed=1)
        }
        assert picked == reversed_picked
        assert 0 < len(picked) < len(ids)

    def test_rollup_counts_unsampled_sessions(self):
        ids = [f"c{i}" for i in range(32)]
        rollup = TraceRollup(sample_rate=0.5, sample_seed=1)
        seq = 0
        for sid in ids:
            for event in _session(sid, [0.5], start_seq=seq):
                rollup.feed(event)
            seq += 10
        picked = {sid for sid in ids if session_sampled(sid, 0.5, seed=1)}
        assert rollup.sessions_seen == len(ids)
        assert rollup.sessions_sampled == len(picked)
        assert rollup.summary()["stall_seconds"]["count"] == len(picked)


# ---------------------------------------------------------------------------
# Merge associativity and serialization.
# ---------------------------------------------------------------------------
class TestMerge:
    def _sessions(self):
        return [
            _session("a", [0.5, 1.5], start_seq=0),
            _session("b", [2.0], start_seq=100, qoe=0.8),
            _session("c", [], start_seq=200, qoe=0.95),
        ]

    def test_merge_equals_single_pass(self):
        sessions = self._sessions()
        single = TraceRollup()
        for events in sessions:
            for event in events:
                single.feed(event)
        parts = []
        for events in sessions:
            part = TraceRollup()
            for event in events:
                part.feed(event)
            parts.append(part)
        merged = merge_rollups([p.to_dict() for p in parts])
        assert merged.summary() == single.summary()
        assert json.dumps(merged.summary(), sort_keys=True) == \
            json.dumps(single.summary(), sort_keys=True)

    def test_roundtrip_dict(self):
        rollup = TraceRollup(sample_rate=0.5, sample_seed=9)
        for event in self._sessions()[0]:
            rollup.feed(event)
        clone = TraceRollup.from_dict(rollup.to_dict())
        assert clone.summary() == rollup.summary()

    def test_merge_rejects_mismatched_sampling(self):
        left = TraceRollup(sample_rate=0.5)
        right = TraceRollup(sample_rate=1.0)
        with pytest.raises(ValueError):
            left.merge(right)

    def test_format_rollup_renders(self):
        rollup = TraceRollup()
        for event in self._sessions()[0]:
            rollup.feed(event)
        text = format_rollup(rollup.summary())
        assert "=== fleet rollup ===" in text
        assert "jain index" in text


# ---------------------------------------------------------------------------
# Merge algebra at scale: behaviour around the reservoir threshold.
#
# The fleet merge relies on a precise contract: folding per-shard
# histograms left-to-right is byte-identical to the single-pass feed as
# long as each *shard's* distribution stays under the reservoir cap
# (its sample list is then the verbatim observation sequence, and merge
# replays it in order).  Above the cap the reservoir subsamples, so the
# algebra keeps exact counts/sums but loses byte-level associativity —
# pinned here so nobody mistakes the estimates for exact percentiles.
# ---------------------------------------------------------------------------
def _values(n: int, offset: float = 0.0):
    # A deterministic, non-monotonic stream (no RNG: reproducible).
    return [((i * 37) % 101) / 10.0 + offset for i in range(n)]


class TestMergeAlgebra:
    def test_chunked_fold_exact_when_chunks_under_reservoir(self):
        # 3 x 3000 samples: total crosses the 4096 cap, chunks do not.
        chunks = [_values(3000, offset=k) for k in range(3)]
        serial = Histogram()
        for chunk in chunks:
            for value in chunk:
                serial.observe(value)
        folded = Histogram()
        for chunk in chunks:
            part = Histogram()
            for value in chunk:
                part.observe(value)
            folded.merge(part)
        state_f, state_s = folded.state_dict(), serial.state_dict()
        # The reservoir is sample-for-sample identical: every chunk
        # replays its verbatim sequence, so the RNG replacement walk
        # matches the single pass exactly.
        assert state_f["values"] == state_s["values"]
        assert state_f["seen"] == state_s["seen"]
        assert state_f["count"] == state_s["count"]
        # Totals agree to float-fold order (merge adds chunk sums in
        # one lump; serial adds element-wise).
        assert state_f["total"] == pytest.approx(state_s["total"])
        for q in (50, 90, 99):
            assert folded.percentile(q) == serial.percentile(q)

    def test_associative_below_reservoir(self):
        def hist(values):
            h = Histogram()
            for value in values:
                h.observe(value)
            return h

        streams = [_values(500, offset=k) for k in range(3)]
        left = hist(streams[0])
        left.merge(hist(streams[1]))
        left.merge(hist(streams[2]))
        bc = hist(streams[1])
        bc.merge(hist(streams[2]))
        right = hist(streams[0])
        right.merge(bc)
        assert left.state_dict() == right.state_dict()

    def test_order_sensitive_above_reservoir(self):
        def hist(values):
            h = Histogram()
            for value in values:
                h.observe(value)
            return h

        a, b = _values(3000), _values(3000, offset=50.0)
        ab = hist(a)
        ab.merge(hist(b))
        ba = hist(b)
        ba.merge(hist(a))
        # Exact aggregates survive any order...
        assert ab.count == ba.count == 6000
        assert ab.total == pytest.approx(ba.total)
        assert ab.mean == pytest.approx(ba.mean)
        # ...but the reservoirs subsampled different suffixes, so the
        # sample sets (and thus percentile estimates) may differ.
        assert ab.state_dict()["values"] != ba.state_dict()["values"]

    def test_not_associative_above_reservoir(self):
        def hist(values):
            h = Histogram()
            for value in values:
                h.observe(value)
            return h

        streams = [_values(3000, offset=50.0 * k) for k in range(3)]
        left = hist(streams[0])
        left.merge(hist(streams[1]))
        left.merge(hist(streams[2]))
        bc = hist(streams[1])
        bc.merge(hist(streams[2]))        # overflows: bc subsamples
        right = hist(streams[0])
        right.merge(bc)                   # right sees bc's subsample
        assert left.count == right.count == 9000
        assert left.total == pytest.approx(right.total)
        assert left.state_dict()["values"] != right.state_dict()["values"]

    def test_rollup_chunked_fold_exact_over_reservoir_total(self):
        # Three shard-sized rollups whose combined stall distribution
        # crosses the reservoir cap; fold-left equals the single pass
        # because each shard stayed under it.
        shards = [
            _session(f"s{k}", [0.1] * 1500, start_seq=k * 10_000)
            for k in range(3)
        ]
        single = TraceRollup()
        for events in shards:
            for event in events:
                single.feed(event)
        folded = TraceRollup()
        for events in shards:
            part = TraceRollup()
            for event in events:
                part.feed(event)
            folded.merge(part)
        summary_f, summary_s = folded.summary(), single.summary()
        assert summary_f["stall_seconds"]["count"] > 4096
        for name in ("stall_seconds", "qoe_score", "startup_delay_s"):
            dist_f, dist_s = summary_f[name], summary_s[name]
            assert dist_f["count"] == dist_s["count"]
            # Percentiles come straight from the (identical) reservoir.
            for q in ("p50", "p90", "p99", "p999"):
                assert dist_f[q] == dist_s[q]
            # Sums/means agree to float-fold order.
            assert dist_f["sum"] == pytest.approx(dist_s["sum"])
        assert summary_f["events"] == summary_s["events"]
        assert summary_f["sessions_seen"] == summary_s["sessions_seen"]
        assert summary_f["jain_index"] == summary_s["jain_index"]


# ---------------------------------------------------------------------------
# StreamingTracer: observers without a buffer.
# ---------------------------------------------------------------------------
class TestStreamingTracer:
    def test_dispatches_without_buffering(self):
        seen = []
        tracer = StreamingTracer(observers=[seen.append])
        tracer.emit_at(0.0, ev.STALL, duration=0.5, segment=0)
        tracer.emit_at(1.0, ev.STALL, duration=0.25, segment=1)
        assert len(seen) == 2
        assert tracer.enabled
        assert len(tracer) == 0
        assert tracer.events == []

    def test_observers_see_what_a_buffering_tracer_sees(self, tiny_prepared):
        from repro.abr import make_abr
        from repro.network.traces import get_trace
        from repro.player.session import SessionConfig, StreamingSession

        def run(tracer):
            session = StreamingSession(
                tiny_prepared,
                make_abr("abr_star", prepared=tiny_prepared),
                get_trace("constant:6", seed=0),
                SessionConfig(buffer_segments=2),
                tracer=tracer,
            )
            session.run()

        buffered = Tracer()
        run(buffered)
        streamed = []
        run(StreamingTracer(observers=[streamed.append]))
        assert [e.to_json() for e in buffered.events] == \
            [e.to_json() for e in streamed]


# ---------------------------------------------------------------------------
# iter_trace_events: streaming reader with line-numbered errors.
# ---------------------------------------------------------------------------
class TestTraceReader:
    def test_reads_path_and_handle(self, tmp_path):
        events = _session("s", [0.5])
        path = tmp_path / "t.jsonl"
        path.write_text("".join(e.to_json() + "\n" for e in events))
        assert [e.to_json() for e in iter_trace_events(str(path))] == \
            [e.to_json() for e in events]

    def test_malformed_line_reports_number(self, tmp_path):
        events = _session("s", [0.5])
        path = tmp_path / "t.jsonl"
        path.write_text(events[0].to_json() + "\n" + "garbage\n")
        with pytest.raises(ev.SchemaError, match="line 2"):
            list(iter_trace_events(str(path)))

    def test_truncated_json_reports_number(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"seq": 0, "t": 0.0, "type": "st\n')
        with pytest.raises(ev.SchemaError, match="line 1"):
            list(iter_trace_events(str(path)))


# ---------------------------------------------------------------------------
# Fork determinism: rollup rows byte-identical at any worker count.
# ---------------------------------------------------------------------------
class TestForkDeterminism:
    @pytest.fixture(scope="class")
    def chaos_kwargs(self, tiny_prepared):
        return dict(
            profiles=["resets", "stalls"],
            seeds=[0, 1],
            base={"video": "tinytest"},
            prepared_map={"tinytest": tiny_prepared},
            rollup=True,
            sample_rate=0.5,
            sample_seed=7,
        )

    def test_workers_1_vs_4_byte_identical(self, chaos_kwargs):
        serial = run_chaos(workers=1, **chaos_kwargs)
        parallel = run_chaos(workers=4, **chaos_kwargs)
        assert chaos_rows_to_jsonl(serial) == chaos_rows_to_jsonl(parallel)
        # The sampled set itself is identical: it is a pure function of
        # (session id, seed), independent of which worker ran the cell.
        for row_s, row_p in zip(serial, parallel):
            assert row_s["rollup"] == row_p["rollup"]
            assert row_s["attribution"] == row_p["attribution"]

    def test_merged_rollup_equals_row_fold(self, chaos_kwargs):
        rows = run_chaos(workers=2, **chaos_kwargs)
        merged = merge_rollups([row["rollup"] for row in rows])
        refolded = merge_rollups([row["rollup"] for row in reversed(rows)])
        summary = merged.summary()
        assert summary["sessions_seen"] == sum(
            TraceRollup.from_dict(r["rollup"]).sessions_seen for r in rows
        )
        # Counters and totals are order-independent.
        assert refolded.summary()["events"] == summary["events"]
        assert refolded.summary()["stall_seconds"]["sum"] == \
            pytest.approx(summary["stall_seconds"]["sum"])
