"""Benchmark suite: payload schema, persistence, and regression gating."""

from __future__ import annotations

import copy
import json

import pytest

from repro.obs import bench, regression
from repro.obs.metrics import get_registry


@pytest.fixture(scope="module")
def payload(tiny_prepared):
    """One quick suite run, shared across the module (seconds, not minutes)."""
    return bench.run_suite(quick=True, label="test", prepared=tiny_prepared)


def test_payload_schema(payload):
    assert payload["schema_version"] == bench.BENCH_SCHEMA_VERSION
    assert payload["label"] == "test"
    assert payload["quick"] is True
    assert payload["workload"] == "tinytest"
    assert set(payload["benchmarks"]) == {
        "micro.decode_segment", "micro.abr_choose", "micro.transport_round",
        "macro.session.round", "macro.session.packet",
        "macro.multiclient", "macro.parallel_runner",
        "macro.resilience", "macro.rollup", "macro.spans",
        "macro.fleet",
    }
    for name, stats in payload["benchmarks"].items():
        assert stats["wall_s"] > 0, name
        assert stats["kind"] in ("micro", "macro", "parallel", "fleet")


def test_micro_stats(payload):
    stats = payload["benchmarks"]["micro.abr_choose"]
    assert stats["repeats"] == 200
    assert stats["per_call_s"] == pytest.approx(
        stats["wall_s"] / stats["repeats"]
    )
    assert 0 < stats["p50_s"] <= stats["p90_s"]


def test_macro_stats(payload):
    for name in ("macro.session.round", "macro.session.packet"):
        stats = payload["benchmarks"][name]
        assert stats["sim_s"] > 0
        assert stats["sim_s_per_wall_s"] == pytest.approx(
            stats["sim_s"] / stats["wall_s"]
        )
        assert stats["events"] > 0
        assert stats["peak_trace_bytes"] > 0
        assert stats["segments"] == 6


def test_multiclient_stats(payload):
    stats = payload["benchmarks"]["macro.multiclient"]
    assert stats["kind"] == "macro"
    assert stats["clients"] == 4
    assert 0.0 < stats["jain_index"] <= 1.0
    assert stats["events"] > 0
    assert stats["sim_s"] > 0


def test_fleet_stats(payload):
    stats = payload["benchmarks"]["macro.fleet"]
    assert stats["kind"] == "fleet"
    assert stats["clients"] == 48
    assert stats["shards"] == 4
    assert stats["clients_per_s"] > 0
    assert 0.0 < stats["jain_index"] <= 1.0
    assert len(stats["fleet_hash"]) == 16
    assert stats["audit_ok"] is True


def test_resilience_stats(payload):
    stats = payload["benchmarks"]["macro.resilience"]
    assert stats["kind"] == "macro"
    assert stats["audit_ok"] is True
    assert stats["faults_injected"] > 0
    assert stats["segments"] == 6
    assert stats["events"] > 0


def test_rollup_stats(payload):
    stats = payload["benchmarks"]["macro.rollup"]
    assert stats["kind"] == "macro"
    # wall_s times the NullTracer fast path; the observer pass is
    # reported separately so regressions gate the tracing-off cost.
    assert stats["rollup_wall_s"] > 0
    assert stats["rollup_overhead_pct"] == pytest.approx(
        (stats["rollup_wall_s"] - stats["wall_s"]) / stats["wall_s"] * 100.0
    )
    # Neither path buffers events.
    assert stats["peak_trace_bytes"] == 0
    assert stats["events"] > 0
    assert stats["segments"] == 6
    assert stats["stall_p99_s"] >= 0.0
    assert stats["audit_ok"] is True


def test_spans_stats(payload):
    stats = payload["benchmarks"]["macro.spans"]
    assert stats["kind"] == "macro"
    # wall_s times the spans-off fast path; the profiled rerun is
    # reported separately so regressions gate the profiler-off cost.
    assert stats["spans_wall_s"] > 0
    assert stats["spans_overhead_pct"] == pytest.approx(
        (stats["spans_wall_s"] - stats["wall_s"]) / stats["wall_s"] * 100.0
    )
    assert stats["spans"] > 0
    assert set(stats["subsystems"]) >= {"abr", "transport", "player"}
    assert all(v >= 0.0 for v in stats["subsystems"].values())
    assert len(stats["tree_hash"]) == 64
    # The profiled run computed identical session metrics.
    assert stats["audit_ok"] is True


def test_parallel_runner_stats(payload):
    stats = payload["benchmarks"]["macro.parallel_runner"]
    assert stats["kind"] == "parallel"
    assert stats["workers"] == 2
    assert stats["reps"] == 4
    assert stats["serial_wall_s"] > 0
    assert stats["speedup"] == pytest.approx(
        stats["serial_wall_s"] / stats["wall_s"]
    )
    assert stats["identical"] is True


def test_suite_does_not_pollute_registry(tiny_prepared):
    before = get_registry().dump()
    bench.run_suite(quick=True, label="isolated", prepared=tiny_prepared)
    assert get_registry().dump() == before


def test_payload_roundtrip(payload, tmp_path):
    path = tmp_path / "BENCH_test.json"
    bench.write_payload(payload, str(path))
    loaded = regression.load_payload(str(path))
    assert loaded == json.loads(json.dumps(payload))


def test_format_suite_lists_every_benchmark(payload):
    text = bench.format_suite(payload)
    for name in payload["benchmarks"]:
        assert name in text


# ---------------------------------------------------------------------------
# Regression gating.
# ---------------------------------------------------------------------------
def _with_wall(payload, name, wall_s):
    clone = copy.deepcopy(payload)
    clone["benchmarks"][name]["wall_s"] = wall_s
    return clone


def test_compare_flags_regression(payload):
    slower = _with_wall(
        payload, "micro.abr_choose",
        payload["benchmarks"]["micro.abr_choose"]["wall_s"] * 1.5,
    )
    comparison = regression.compare_payloads(payload, slower,
                                             threshold_pct=10.0)
    assert comparison.failed
    assert [r.name for r in comparison.regressions] == ["micro.abr_choose"]
    assert comparison.regressions[0].delta_pct == pytest.approx(50.0)


def test_compare_tolerates_below_threshold(payload):
    slower = _with_wall(
        payload, "micro.abr_choose",
        payload["benchmarks"]["micro.abr_choose"]["wall_s"] * 1.05,
    )
    comparison = regression.compare_payloads(payload, slower,
                                             threshold_pct=10.0)
    assert not comparison.failed
    assert all(r.status == "ok" for r in comparison.rows)


def test_compare_missing_benchmark_fails(payload):
    current = copy.deepcopy(payload)
    del current["benchmarks"]["macro.session.packet"]
    comparison = regression.compare_payloads(payload, current)
    assert comparison.failed
    assert [r.name for r in comparison.missing] == ["macro.session.packet"]


def test_compare_new_benchmark_is_informational(payload):
    current = copy.deepcopy(payload)
    current["benchmarks"]["micro.novel"] = {"kind": "micro", "wall_s": 1.0}
    comparison = regression.compare_payloads(payload, current)
    assert not comparison.failed
    assert any(r.status == "new" for r in comparison.rows)
    assert "NEW" in regression.format_comparison(comparison)


def test_compare_broken_audit_fails_regardless_of_speed(payload):
    current = copy.deepcopy(payload)
    current["benchmarks"]["macro.resilience"]["audit_ok"] = False
    # Even faster-than-baseline, a broken invariant audit gates.
    current["benchmarks"]["macro.resilience"]["wall_s"] *= 0.5
    comparison = regression.compare_payloads(payload, current)
    assert comparison.failed
    assert [r.name for r in comparison.broken] == ["macro.resilience"]
    assert "AUDIT-FAIL" in regression.format_comparison(comparison)


def test_load_payload_rejects_bad_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema_version": 99, "benchmarks": {}}))
    with pytest.raises(regression.BenchFormatError):
        regression.load_payload(str(path))
    path.write_text("not json")
    with pytest.raises(regression.BenchFormatError):
        regression.load_payload(str(path))


# ---------------------------------------------------------------------------
# CLI: repro bench --input/--compare exit codes.
# ---------------------------------------------------------------------------
def test_cli_bench_compare_exit_codes(payload, tmp_path, capsys):
    from repro.cli import main

    base_path = tmp_path / "BENCH_base.json"
    bench.write_payload(payload, str(base_path))
    slower = _with_wall(
        payload, "micro.abr_choose",
        payload["benchmarks"]["micro.abr_choose"]["wall_s"] * 1.5,
    )
    cur_path = tmp_path / "BENCH_cur.json"
    bench.write_payload(slower, str(cur_path))

    rc = main(["bench", "--input", str(cur_path),
               "--compare", str(base_path), "--threshold", "10"])
    assert rc == 1
    assert "REGRESSION" in capsys.readouterr().out

    rc = main(["bench", "--input", str(cur_path),
               "--compare", str(base_path), "--threshold", "60"])
    assert rc == 0
    assert "no regressions" in capsys.readouterr().out


def test_cli_bench_json_compare_object(payload, tmp_path, capsys):
    """--json --compare emits one machine-readable object for CI."""
    from repro.cli import main

    base_path = tmp_path / "BENCH_base.json"
    bench.write_payload(payload, str(base_path))
    slower = _with_wall(
        payload, "micro.abr_choose",
        payload["benchmarks"]["micro.abr_choose"]["wall_s"] * 1.5,
    )
    cur_path = tmp_path / "BENCH_cur.json"
    bench.write_payload(slower, str(cur_path))

    rc = main(["--json", "bench", "--input", str(cur_path),
               "--compare", str(base_path), "--threshold", "10"])
    assert rc == 1
    out = json.loads(capsys.readouterr().out)
    assert set(out) == {"payload", "comparison"}
    assert out["payload"]["benchmarks"].keys() == payload["benchmarks"].keys()
    comparison = out["comparison"]
    assert comparison["failed"] is True
    assert comparison["threshold_pct"] == 10.0
    assert comparison["counts"]["regression"] == 1
    by_name = {row["name"]: row for row in comparison["rows"]}
    row = by_name["micro.abr_choose"]
    assert row["status"] == "regression"
    assert row["delta_pct"] == pytest.approx(50.0)
    assert all(
        set(r) == {"name", "baseline_s", "current_s", "delta_pct", "status"}
        for r in comparison["rows"]
    )


def test_cli_bench_rejects_unreadable_baseline(payload, tmp_path):
    from repro.cli import main

    cur_path = tmp_path / "BENCH_cur.json"
    bench.write_payload(payload, str(cur_path))
    rc = main(["bench", "--input", str(cur_path),
               "--compare", str(tmp_path / "absent.json")])
    assert rc == 2
