"""Shared fixtures.

Heavy objects (encoded videos, prepared manifests) are session-scoped:
encoding realizes 75 x 13 x 96 frames of structure and preparation runs
tens of thousands of decode simulations, so tests share one instance.
A "tiny" 6-segment video keeps tests that need preparation fast.
"""

from __future__ import annotations

import pytest

from repro.network.traces import constant_trace, verizon_trace
from repro.prep.prepare import prepare
from repro.video.content import ContentProfile
from repro.video.encoder import encode_video
from repro.video.library import get_video


TINY_PROFILE = ContentProfile(
    name="tinytest",
    title="Tiny Test Video",
    genre="Test",
    segments=6,
    motion_mean=0.4,
    motion_spread=0.2,
    complexity=0.5,
    scene_cut_rate=1.0,
    size_std_mbps=3.0,
    static_fraction=0.15,
)


@pytest.fixture(scope="session")
def tiny_video():
    """A 6-segment synthetic video at the full 13-level ladder."""
    return encode_video(TINY_PROFILE)


@pytest.fixture(scope="session")
def tiny_prepared(tiny_video):
    """The tiny video with its VOXEL-enriched manifest."""
    return prepare(tiny_video)


@pytest.fixture(scope="session")
def bbb_video():
    """The full Big Buck Bunny model (75 segments)."""
    return get_video("bbb")


@pytest.fixture(scope="session")
def segment(tiny_video):
    """A representative top-quality segment."""
    return tiny_video.segment(12, 0)


@pytest.fixture()
def const10():
    return constant_trace(10.0)


@pytest.fixture()
def verizon():
    return verizon_trace()
