"""Tests for the observability layer: tracer, metrics, profiling, inspector."""

from __future__ import annotations

import io
import json

import pytest

from repro.abr import make_abr
from repro.obs import (
    EVENT_FIELDS,
    NULL_TRACER,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    SchemaError,
    TraceEvent,
    Tracer,
    enable_profiling,
    get_registry,
    profiling_enabled,
    read_jsonl,
    reset_registry,
    timed,
    timing_summary,
)
from repro.obs import events as ev
from repro.obs import inspect as trace_inspect
from repro.player.session import SessionConfig, StreamingSession


def _run_traced(prepared, trace, abr_name="abr_star", **cfg_kwargs):
    tracer = Tracer()
    abr = make_abr(abr_name, prepared=prepared)
    config = SessionConfig(buffer_segments=2, **cfg_kwargs)
    session = StreamingSession(prepared, abr, trace, config, tracer=tracer)
    metrics = session.run()
    return metrics, tracer


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.count == 0
        assert h.mean == 0.0
        assert h.percentile(50) == 0.0

    def test_nearest_rank_percentiles(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(50) == 50.0
        assert h.percentile(90) == 90.0
        assert h.percentile(99) == 99.0
        assert h.percentile(100) == 100.0

    def test_small_sample(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.percentile(50) == 2.0
        assert h.percentile(99) == 3.0
        assert h.mean == pytest.approx(2.0)

    def test_out_of_range_percentile(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_summary_keys(self):
        h = Histogram()
        h.observe(5.0)
        s = h.summary()
        assert set(s) == {"count", "sum", "mean", "p50", "p90", "p99"}
        assert s["count"] == 1.0 and s["sum"] == 5.0


class TestRegistry:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = Gauge()
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0

    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("x", abr="bola")
        b = reg.counter("x", abr="bola")
        c = reg.counter("x", abr="beta")
        assert a is b and a is not c

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("x", abr="bola", trace="verizon")
        b = reg.counter("x", trace="verizon", abr="bola")
        assert a is b

    def test_dump_and_render(self):
        reg = MetricsRegistry()
        reg.counter("hits", abr="bola").inc(3)
        reg.gauge("depth").set(7)
        reg.histogram("lat").observe(0.5)
        snap = reg.dump()
        assert snap["counters"]["hits{abr=bola}"] == 3.0
        assert snap["gauges"]["depth"] == 7.0
        assert snap["histograms"]["lat"]["count"] == 1.0
        text = reg.render()
        assert "counter   hits{abr=bola} = 3" in text
        assert "gauge     depth = 7" in text
        assert reg.render(prefix="hits").count("\n") == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.dump()["counters"] == {}

    def test_default_registry(self):
        reset_registry()
        get_registry().counter("probe").inc()
        assert get_registry().dump()["counters"]["probe"] == 1.0
        reset_registry()
        assert "probe" not in get_registry().dump()["counters"]


class TestHistogramReservoir:
    def test_exact_below_cap(self):
        h = Histogram(reservoir=100)
        for v in range(100, 0, -1):
            h.observe(float(v))
        # Every sample retained: percentiles are exact.
        assert h.percentile(50) == 50.0
        assert h.count == 100
        assert h.total == pytest.approx(sum(range(1, 101)))

    def test_memory_bounded_past_cap(self):
        h = Histogram(reservoir=64)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h._values) == 64
        # Exact aggregates survive the sampling.
        assert h.count == 10_000
        assert h.total == pytest.approx(sum(range(10_000)))
        assert h.mean == pytest.approx(4999.5)

    def test_reservoir_is_deterministic(self):
        def fill():
            h = Histogram(reservoir=32)
            for v in range(5_000):
                h.observe(float(v))
            return h

        assert fill()._values == fill()._values

    def test_reservoir_percentiles_stay_representative(self):
        h = Histogram(reservoir=512)
        for v in range(100_000):
            h.observe(float(v))
        # Uniform input: the sampled median lands near the true median.
        assert abs(h.percentile(50) - 50_000) < 15_000

    def test_sorted_cache_invalidation(self):
        h = Histogram()
        h.observe(2.0)
        assert h.percentile(50) == 2.0
        h.observe(1.0)  # must invalidate the cached ordering
        assert h.percentile(0) == 1.0

    def test_merge_preserves_exact_aggregates(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (3.0, 4.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(10.0)
        assert a.percentile(100) == 4.0

    def test_rejects_non_positive_reservoir(self):
        with pytest.raises(ValueError):
            Histogram(reservoir=0)


class TestScopedRegistry:
    def test_scope_isolates_and_merges_back(self):
        from repro.obs import scoped_registry

        reset_registry()
        get_registry().counter("outer").inc(2)
        with scoped_registry() as registry:
            assert get_registry() is registry
            assert "outer" not in registry.dump()["counters"]
            get_registry().counter("outer").inc(3)
            get_registry().histogram("lat").observe(0.5)
        # Back on the parent, with the scope's series folded in.
        snap = get_registry().dump()
        assert snap["counters"]["outer"] == 5.0
        assert snap["histograms"]["lat"]["count"] == 1.0
        reset_registry()

    def test_scope_discard(self):
        from repro.obs import scoped_registry

        reset_registry()
        with scoped_registry(merge=False):
            get_registry().counter("ephemeral").inc()
        assert "ephemeral" not in get_registry().dump()["counters"]

    def test_scope_restores_on_exception(self):
        from repro.obs import scoped_registry

        reset_registry()
        parent = get_registry()
        with pytest.raises(RuntimeError):
            with scoped_registry():
                raise RuntimeError("boom")
        assert get_registry() is parent

    def test_registry_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.merge(b)
        snap = a.dump()
        assert snap["counters"]["c"] == 3.0  # counters add
        assert snap["gauges"]["g"] == 9.0  # gauges take the latest


class TestTracerObservers:
    def test_observer_sees_every_event(self):
        seen = []
        tracer = Tracer(observers=[seen.append])
        tracer.emit_at(0.0, ev.STALL, duration=0.5, segment=1)
        tracer.emit_at(1.0, ev.STALL, duration=0.25, segment=2)
        assert [e.seq for e in seen] == [0, 1]

    def test_observer_sees_evicted_events(self):
        seen = []
        tracer = Tracer(capacity=2, observers=[seen.append])
        for i in range(5):
            tracer.emit_at(float(i), ev.STALL, duration=0.1, segment=i)
        assert len(tracer) == 2  # ring buffer kept only the tail
        assert len(seen) == 5  # the observer saw everything

    def test_add_observer_after_construction(self):
        seen = []
        tracer = Tracer()
        tracer.emit_at(0.0, ev.STALL, duration=0.1, segment=0)
        tracer.add_observer(seen.append)
        tracer.emit_at(1.0, ev.STALL, duration=0.1, segment=1)
        assert [e.seq for e in seen] == [1]

    def test_null_tracer_accepts_observers(self):
        NULL_TRACER.add_observer(lambda event: None)


class TestEventSchema:
    def test_roundtrip(self):
        event = TraceEvent(
            seq=3, t=1.25, type=ev.STALL,
            fields={"duration": 0.5, "segment": 7},
        )
        event.validate()
        restored = TraceEvent.from_json(event.to_json())
        assert restored == event

    def test_json_is_deterministic(self):
        event = TraceEvent(
            seq=0, t=0.0, type=ev.STALL,
            fields={"segment": 1, "duration": 0.25},
        )
        assert event.to_json() == event.to_json()
        assert json.loads(event.to_json())["v"] == SCHEMA_VERSION

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            TraceEvent(seq=0, t=0.0, type="nope", fields={}).validate()

    def test_missing_field_rejected(self):
        with pytest.raises(SchemaError):
            TraceEvent(
                seq=0, t=0.0, type=ev.STALL, fields={"duration": 1.0}
            ).validate()

    def test_extra_field_rejected(self):
        with pytest.raises(SchemaError):
            TraceEvent(
                seq=0, t=0.0, type=ev.STALL,
                fields={"duration": 1.0, "segment": 0, "bogus": 1},
            ).validate()

    def test_wrong_version_rejected(self):
        line = json.dumps({
            "v": SCHEMA_VERSION + 1, "seq": 0, "t": 0.0,
            "type": ev.STALL, "duration": 1.0, "segment": 0,
        })
        with pytest.raises(SchemaError):
            TraceEvent.from_json(line)

    def test_every_type_has_fields(self):
        for type_, fields in EVENT_FIELDS.items():
            assert isinstance(fields, tuple), type_


class TestTracer:
    def test_emit_validates(self):
        tracer = Tracer()
        with pytest.raises(SchemaError):
            tracer.emit(ev.STALL, duration=1.0)  # missing segment

    def test_ring_buffer_overflow(self):
        tracer = Tracer(capacity=4, validate=False)
        for i in range(10):
            tracer.emit_at(float(i), ev.STALL, duration=0.0, segment=i)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.events[0].fields["segment"] == 6

    def test_emit_at_overrides_clock(self):
        tracer = Tracer()
        event = tracer.emit_at(42.0, ev.STALL, duration=0.0, segment=0)
        assert event.t == 42.0

    def test_write_and_read_jsonl(self, tmp_path):
        tracer = Tracer()
        tracer.emit(ev.STALL, duration=0.5, segment=2)
        tracer.emit(ev.PACKET_LOSS, dropped_packets=1, lost_bytes=1500,
                    reliable=False)
        path = tmp_path / "trace.jsonl"
        assert tracer.write_jsonl(str(path)) == 2
        restored = read_jsonl(str(path))
        assert restored == tracer.events

    def test_write_to_file_object(self):
        tracer = Tracer()
        tracer.emit(ev.STALL, duration=0.5, segment=2)
        sink = io.StringIO()
        tracer.write_jsonl(sink)
        assert read_jsonl(io.StringIO(sink.getvalue())) == tracer.events

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(ev.STALL, duration=0.5, segment=2)
        tracer.clear()
        assert len(tracer) == 0 and tracer.to_jsonl() == ""

    def test_null_tracer_is_inert(self):
        assert not NULL_TRACER.enabled
        NULL_TRACER.emit(ev.STALL, duration=1.0)  # no validation, no state
        NULL_TRACER.emit_at(0.0, "whatever")
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events == []
        assert NULL_TRACER.write_jsonl("/nonexistent/ignored") == 0

    def test_null_tracer_shared(self):
        assert isinstance(NULL_TRACER, NullTracer)


class TestSessionTracing:
    def test_trace_content(self, tiny_prepared, verizon):
        metrics, tracer = _run_traced(tiny_prepared, verizon)
        events = tracer.events

        starts = [e for e in events if e.type == ev.SESSION_START]
        ends = [e for e in events if e.type == ev.SESSION_END]
        assert len(starts) == 1 and len(ends) == 1
        assert starts[0].fields["video"] == tiny_prepared.name
        assert starts[0].fields["abr"] == "abr_star"
        assert ends[0].fields["segments"] == len(metrics.records)
        assert ends[0].fields["buf_ratio"] == pytest.approx(
            metrics.buf_ratio
        )

        decisions = tracer.select(ev.ABR_DECISION)
        decided = {e.fields["segment"] for e in decisions}
        assert decided == set(range(len(metrics.records)))

        downloads = tracer.select(ev.DOWNLOAD_END)
        assert len(downloads) == len(metrics.records)
        for event, record in zip(downloads, metrics.records):
            assert event.fields["segment"] == record.index
            assert event.fields["bytes_delivered"] == record.bytes_delivered

        assert tracer.select(ev.TRANSPORT_ROUND)
        assert len(tracer.select(ev.BUFFER_SAMPLE)) == len(metrics.records)

    def test_timestamps_monotone(self, tiny_prepared, verizon):
        _, tracer = _run_traced(tiny_prepared, verizon)
        times = [e.t for e in tracer.events]
        assert all(a <= b for a, b in zip(times, times[1:]))
        seqs = [e.seq for e in tracer.events]
        assert seqs == list(range(len(seqs)))

    def test_deterministic_trace(self, tiny_prepared, verizon):
        _, first = _run_traced(tiny_prepared, verizon)
        _, second = _run_traced(tiny_prepared, verizon)
        assert first.to_jsonl() == second.to_jsonl()

    def test_disabled_by_default(self, tiny_prepared, verizon):
        abr = make_abr("abr_star", prepared=tiny_prepared)
        session = StreamingSession(
            tiny_prepared, abr, verizon, SessionConfig(buffer_segments=2)
        )
        assert session.tracer is NULL_TRACER
        session.run()
        assert len(session.tracer) == 0

    def test_tracing_does_not_change_results(self, tiny_prepared, verizon):
        traced, _ = _run_traced(tiny_prepared, verizon)
        abr = make_abr("abr_star", prepared=tiny_prepared)
        plain = StreamingSession(
            tiny_prepared, abr, verizon, SessionConfig(buffer_segments=2)
        ).run()
        assert traced.summary() == plain.summary()

    def test_stall_events_account_for_total_stall(self):
        from repro.prep.prepare import get_prepared
        from repro.network.traces import get_trace

        tracer = Tracer()
        prepared = get_prepared("bbb")
        abr = make_abr("bola", prepared=prepared)
        session = StreamingSession(
            prepared, abr, get_trace("tmobile"),
            SessionConfig(buffer_segments=2), tracer=tracer,
        )
        metrics = session.run()
        stalls = tracer.select(ev.STALL)
        assert metrics.total_stall > 0
        assert sum(e.fields["duration"] for e in stalls) == pytest.approx(
            metrics.total_stall
        )

    def test_packet_backend_traces(self, tiny_prepared, verizon):
        _, tracer = _run_traced(
            tiny_prepared, verizon, transport_backend="packet"
        )
        assert tracer.select(ev.SESSION_END)
        times = [e.t for e in tracer.events]
        assert all(a <= b for a, b in zip(times, times[1:]))


class TestProfiling:
    def teardown_method(self):
        enable_profiling(False)
        reset_registry()

    def test_disabled_records_nothing(self):
        reset_registry()
        enable_profiling(False)
        with timed("probe.block"):
            pass
        assert get_registry().dump()["histograms"] == {}
        assert "no samples" in timing_summary()

    def test_context_manager(self):
        reset_registry()
        enable_profiling(True)
        assert profiling_enabled()
        with timed("probe.block"):
            pass
        hist = get_registry().histogram("timing.probe.block")
        assert hist.count == 1
        assert hist.mean >= 0.0

    def test_decorator(self):
        reset_registry()
        enable_profiling(True)

        @timed("probe.func")
        def work(x):
            return x + 1

        assert work(1) == 2
        assert work(2) == 3
        assert get_registry().histogram("timing.probe.func").count == 2

    def test_summary_render(self):
        reset_registry()
        enable_profiling(True)
        with timed("probe.block"):
            pass
        assert "timing.probe.block" in timing_summary()


class TestInspect:
    @pytest.fixture(scope="class")
    def traced(self, tiny_prepared):
        from repro.network.traces import verizon_trace

        return _run_traced(tiny_prepared, verizon_trace())

    def test_summarize(self, traced):
        metrics, tracer = traced
        summary = trace_inspect.summarize(tracer.events)
        assert summary["schema_version"] == SCHEMA_VERSION
        assert summary["events"] == len(tracer)
        assert summary["session"]["video"] == metrics.video
        assert summary["result"]["buf_ratio"] == pytest.approx(
            metrics.buf_ratio
        )
        assert summary["abr_decisions"] >= len(metrics.records)

    def test_timeline(self, traced):
        metrics, tracer = traced
        rows = trace_inspect.timeline(tracer.events)
        assert [row["segment"] for row in rows] == [
            r.index for r in metrics.records
        ]
        for row, record in zip(rows, metrics.records):
            assert row["quality"] == record.quality
            assert row["bytes"] == record.bytes_delivered

    def test_format_helpers(self, traced):
        _, tracer = traced
        summary = trace_inspect.summarize(tracer.events)
        rows = trace_inspect.timeline(tracer.events)
        assert "events by type" in trace_inspect.format_summary(summary)
        assert "segment" in trace_inspect.format_timeline(rows)

    def test_empty_trace(self):
        summary = trace_inspect.summarize([])
        assert summary["events"] == 0
        assert trace_inspect.timeline([]) == []
