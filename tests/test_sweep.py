"""Sweep engine: grid expansion, worker parity, JSONL schema, CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.spec import ScenarioSpec
from repro.experiments.sweep import (
    SweepSpec,
    dry_run_rows,
    parse_rows_jsonl,
    rows_to_jsonl,
    run_sweep,
    validate_rows,
)


GRID_24 = {
    "name": "grid24",
    "base": {"repetitions": 1, "video": "bbb"},
    "grid": {
        "abr": ["bola", "abr_star", "mpc"],
        "trace": ["verizon", "att"],
        "buffer_segments": [1, 3],
        "reliability": ["quic", "quic*"],
    },
}


# ---------------------------------------------------------------------------
# Expansion
# ---------------------------------------------------------------------------
class TestExpand:
    def test_cartesian_grid(self):
        sweep = SweepSpec.from_dict(GRID_24)
        specs = sweep.expand()
        assert len(specs) == 24
        # First axis outermost, deterministic order.
        assert specs[0].abr == "bola" and specs[-1].abr == "mpc"
        assert all(s.repetitions == 1 for s in specs)
        assert len({s.spec_hash() for s in specs}) == 24

    def test_base_only_is_single_cell(self):
        specs = SweepSpec(base={"abr": "bola"}).expand()
        assert len(specs) == 1 and specs[0].abr == "bola"

    def test_explicit_scenarios_layer_over_base(self):
        sweep = SweepSpec(
            base={"video": "ed", "seed": 5},
            scenarios=[{"abr": "bola"}, {"abr": "mpc", "seed": 9}],
        )
        specs = sweep.expand()
        assert [s.abr for s in specs] == ["bola", "mpc"]
        assert [s.seed for s in specs] == [5, 9]
        assert all(s.video == "ed" for s in specs)

    def test_duplicate_cells_deduplicated(self):
        sweep = SweepSpec(
            grid={"abr": ["bola"]},
            scenarios=[{"abr": "bola"}, {"abr": "mpc"}],
        )
        specs = sweep.expand()
        assert [s.abr for s in specs] == ["bola", "mpc"]

    def test_unknown_sweep_field_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepSpec field"):
            SweepSpec.from_dict({"cells": []})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty list"):
            SweepSpec.from_dict({"grid": {"abr": []}})

    def test_unknown_scenario_field_fails_at_expand(self):
        sweep = SweepSpec(grid={"abr_name": ["bola"]})
        with pytest.raises(ValueError, match="unknown ScenarioSpec field"):
            sweep.expand()


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def _tiny_specs(tiny_prepared):
    return (
        [
            ScenarioSpec(video="tinytest", abr=abr, trace="verizon",
                         buffer_segments=buf, repetitions=1)
            for abr in ("bola", "abr_star")
            for buf in (1, 3)
        ],
        {"tinytest": tiny_prepared},
    )


class TestRunSweep:
    def test_rows_keyed_by_hash(self, tiny_prepared):
        specs, prepared_map = _tiny_specs(tiny_prepared)
        rows = run_sweep(specs, prepared_map=prepared_map)
        assert [r["spec_hash"] for r in rows] == \
            [s.spec_hash() for s in specs]
        assert validate_rows(rows) == 4
        for row in rows:
            assert row["summary"]["repetitions"] == 1

    def test_worker_count_does_not_change_rows(self, tiny_prepared):
        specs, prepared_map = _tiny_specs(tiny_prepared)
        serial = run_sweep(specs, workers=1, prepared_map=prepared_map)
        forked = run_sweep(specs, workers=2, prepared_map=prepared_map)
        assert rows_to_jsonl(serial) == rows_to_jsonl(forked)

    def test_dry_run_validates_without_running(self):
        rows = dry_run_rows(SweepSpec.from_dict(GRID_24))
        assert len(rows) == 24
        assert all("summary" not in r for r in rows)
        validate_rows(rows, require_summary=False)

    def test_dry_run_catches_typos(self):
        sweep = SweepSpec(grid={"abr": ["bola", "no_such_abr"]})
        with pytest.raises(KeyError, match="unknown ABR"):
            dry_run_rows(sweep)


# ---------------------------------------------------------------------------
# JSONL schema
# ---------------------------------------------------------------------------
class TestRowSchema:
    def _rows(self, tiny_prepared):
        specs, prepared_map = _tiny_specs(tiny_prepared)
        return run_sweep(specs[:2], prepared_map=prepared_map)

    def test_jsonl_round_trip(self, tiny_prepared):
        rows = self._rows(tiny_prepared)
        text = rows_to_jsonl(rows)
        assert text.endswith("\n")
        parsed = parse_rows_jsonl(text.splitlines())
        assert validate_rows(parsed) == 2
        assert rows_to_jsonl(parsed) == text

    def test_validate_rejects_tampered_hash(self, tiny_prepared):
        rows = self._rows(tiny_prepared)
        rows[0]["spec_hash"] = "0" * 12
        with pytest.raises(ValueError, match="does not match"):
            validate_rows(rows)

    def test_validate_rejects_duplicates(self, tiny_prepared):
        rows = self._rows(tiny_prepared)
        with pytest.raises(ValueError, match="duplicate spec_hash"):
            validate_rows(rows + [rows[0]])

    def test_validate_rejects_missing_summary_key(self, tiny_prepared):
        rows = self._rows(tiny_prepared)
        del rows[0]["summary"]["ssim"]
        with pytest.raises(ValueError, match="summary missing 'ssim'"):
            validate_rows(rows)

    def test_validate_rejects_extra_key(self, tiny_prepared):
        rows = self._rows(tiny_prepared)
        rows[0]["extra"] = 1
        with pytest.raises(ValueError, match="unknown key"):
            validate_rows(rows)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestSweepCli:
    def test_dry_run_from_spec_file(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(GRID_24))
        assert main(["sweep", "--spec", str(grid_file), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "24 scenarios:" in out
        assert "bbb/bola/Q/verizon/buf1/round" in out

    def test_dry_run_json_rows(self, tmp_path, capsys):
        grid_file = tmp_path / "grid.json"
        grid_file.write_text(json.dumps(GRID_24))
        assert main([
            "--json", "sweep", "--spec", str(grid_file), "--dry-run",
        ]) == 0
        rows = parse_rows_jsonl(capsys.readouterr().out.splitlines())
        assert validate_rows(rows, require_summary=False) == 24

    def test_dry_run_from_grid_flags(self, capsys):
        assert main([
            "sweep", "--abrs", "bola,abr_star", "--buffers", "1,3",
            "--dry-run",
        ]) == 0
        assert "4 scenarios:" in capsys.readouterr().out

    def test_unknown_component_exits_2(self, capsys):
        assert main(["sweep", "--abrs", "nope", "--dry-run"]) == 2
        assert "unknown ABR" in capsys.readouterr().err

    def test_bad_spec_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"cells": []}')
        assert main(["sweep", "--spec", str(bad), "--dry-run"]) == 2
        assert "unknown SweepSpec field" in capsys.readouterr().err

    def test_run_and_validate(self, tmp_path, capsys):
        out_file = tmp_path / "rows.jsonl"
        code = main([
            "sweep", "--videos", "bbb", "--abrs", "bola",
            "--traces", "constant:10.5", "--buffers", "1",
            "--reps", "1", "--out", str(out_file),
        ])
        assert code == 0
        capsys.readouterr()
        assert main(["sweep", "--validate", str(out_file)]) == 0
        assert "1 rows ok" in capsys.readouterr().out

    def test_validate_flags_corruption(self, tmp_path, capsys):
        out_file = tmp_path / "rows.jsonl"
        row = {"spec_hash": "0" * 12, "label": "x",
               "spec": ScenarioSpec().to_dict(), "summary": {}}
        out_file.write_text(json.dumps(row) + "\n")
        assert main(["sweep", "--validate", str(out_file)]) == 1
        assert "does not match" in capsys.readouterr().err
