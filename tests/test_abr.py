"""Tests for the ABR algorithms."""

import pytest

from repro.abr import make_abr
from repro.abr.abr_star import AbrStar, BolaSsim, qoe_utility
from repro.abr.base import (
    ControlVerb,
    Decision,
    DecisionContext,
    DownloadProgress,
    clamp_quality,
    safe_throughput,
)
from repro.abr.beta import BetaABR
from repro.abr.bola import Bola
from repro.abr.mpc import RobustMPC
from repro.abr.throughput import ThroughputABR
from repro.qoe.metrics import SSIM, VMAF


def _ctx(prepared, index=1, buffer_s=6.0, capacity_s=8.0, tput=6e6,
         last=5, voxel=True, samples=None):
    manifest = prepared.manifest
    entries = [manifest.entry(q, index) for q in range(manifest.num_levels)]
    if samples is None:
        samples = (tput,) * 5 if tput > 0 else ()
    return DecisionContext(
        segment_index=index,
        buffer_level_s=buffer_s,
        buffer_capacity_s=capacity_s,
        throughput_bps=tput,
        last_quality=last,
        manifest=manifest,
        entries=entries,
        segment_duration=4.0,
        voxel_capable=voxel,
        throughput_samples=samples,
    )


def _progress(index=1, quality=8, elapsed=1.0, sent=500_000,
              total=2_000_000, buffer_s=3.0, tput=4e6):
    return DownloadProgress(
        segment_index=index,
        quality=quality,
        elapsed=elapsed,
        bytes_sent=sent,
        bytes_total=total,
        buffer_level_s=buffer_s,
        throughput_bps=tput,
    )


class TestHelpers:
    def test_clamp_quality(self):
        assert clamp_quality(-3, 13) == 0
        assert clamp_quality(20, 13) == 12
        assert clamp_quality(5, 13) == 5

    def test_safe_throughput_harmonic(self):
        assert safe_throughput([1e6, 1e6]) == pytest.approx(1e6)
        # Harmonic mean punishes dips more than spikes.
        assert safe_throughput([1e6, 9e6]) < (1e6 + 9e6) / 2

    def test_safe_throughput_default(self):
        assert safe_throughput([], default=7.0) == 7.0
        assert safe_throughput([0.0, -1.0], default=7.0) == 7.0


class TestFactory:
    def test_all_names_constructible(self, tiny_prepared):
        for name in ("tput", "bola", "mpc", "beta", "bola_ssim", "abr_star"):
            abr = make_abr(name, prepared=tiny_prepared)
            assert abr.name in name or name == "voxel"

    def test_voxel_alias(self, tiny_prepared):
        assert isinstance(make_abr("voxel", prepared=tiny_prepared), AbrStar)

    def test_beta_requires_prepared(self):
        with pytest.raises(ValueError, match="prepared"):
            make_abr("beta")

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_abr("pensieve")


class TestThroughputABR:
    def test_picks_highest_fitting(self, tiny_prepared):
        abr = ThroughputABR(safety=1.0)
        decision = abr.choose(_ctx(tiny_prepared, tput=50e6))
        assert decision.quality == 12
        decision = abr.choose(_ctx(tiny_prepared, tput=1e6))
        assert decision.quality < 6

    def test_zero_throughput_lowest(self, tiny_prepared):
        abr = ThroughputABR()
        assert abr.choose(_ctx(tiny_prepared, tput=0.0)).quality == 0

    def test_safety_monotone(self, tiny_prepared):
        ctx = _ctx(tiny_prepared, tput=8e6)
        loose = ThroughputABR(safety=1.2).choose(ctx).quality
        tight = ThroughputABR(safety=0.5).choose(ctx).quality
        assert tight <= loose

    def test_rejects_bad_safety(self):
        with pytest.raises(ValueError):
            ThroughputABR(safety=0.0)


class TestBola:
    def test_first_segment_starts_lowest_full(self, tiny_prepared):
        abr = Bola()
        abr.setup(tiny_prepared.manifest, 8.0)
        decision = abr.choose(
            _ctx(tiny_prepared, index=0, buffer_s=0.0, tput=0.0, last=None)
        )
        assert decision.quality == 0
        assert decision.target_bytes is None

    def test_higher_buffer_higher_quality(self, tiny_prepared):
        abr = Bola(feasibility_factor=None)
        abr.setup(tiny_prepared.manifest, 8.0)
        low = abr.choose(_ctx(tiny_prepared, buffer_s=1.0)).quality
        high = abr.choose(_ctx(tiny_prepared, buffer_s=7.9)).quality
        assert high >= low

    def test_full_buffer_wants_top_or_waits(self, tiny_prepared):
        abr = Bola(feasibility_factor=None)
        abr.setup(tiny_prepared.manifest, 8.0)
        decision = abr.choose(_ctx(tiny_prepared, buffer_s=7.99, tput=50e6))
        assert decision.quality >= 11 or decision.wait_s > 0

    def test_feasibility_cap_binds(self, tiny_prepared):
        capped = Bola(feasibility_factor=1.0)
        capped.setup(tiny_prepared.manifest, 8.0)
        uncapped = Bola(feasibility_factor=None)
        uncapped.setup(tiny_prepared.manifest, 8.0)
        ctx = _ctx(tiny_prepared, buffer_s=7.5, tput=1.5e6)
        assert capped.choose(ctx).quality <= uncapped.choose(ctx).quality

    def test_abandonment_restarts_lower(self, tiny_prepared):
        abr = Bola()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared, buffer_s=4.0, tput=4e6))
        # Hopelessly behind: 1.9 MB left, 1 s of buffer, 1 Mbps.
        action = abr.control(
            _progress(sent=100_000, total=2_000_000, buffer_s=1.0, tput=1e6)
        )
        assert action.verb is ControlVerb.RESTART
        assert action.restart_quality < 8

    def test_abandonment_once_per_segment(self, tiny_prepared):
        abr = Bola()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared))
        first = abr.control(_progress(buffer_s=0.5, tput=1e6))
        second = abr.control(_progress(buffer_s=0.5, tput=1e6))
        assert first.verb is ControlVerb.RESTART
        assert second.verb is ControlVerb.CONTINUE

    def test_no_abandon_when_on_track(self, tiny_prepared):
        abr = Bola()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared))
        action = abr.control(
            _progress(sent=1_500_000, total=2_000_000, buffer_s=6.0, tput=8e6)
        )
        assert action.verb is ControlVerb.CONTINUE

    def test_no_abandon_near_completion(self, tiny_prepared):
        abr = Bola()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared))
        action = abr.control(
            _progress(sent=1_900_000, total=2_000_000, buffer_s=0.2, tput=1e5)
        )
        assert action.verb is ControlVerb.CONTINUE


class TestMpc:
    def test_needs_samples(self, tiny_prepared):
        abr = RobustMPC()
        abr.setup(tiny_prepared.manifest, 12.0)
        decision = abr.choose(
            _ctx(tiny_prepared, tput=0.0, samples=(), last=None)
        )
        assert decision.quality == 0

    def test_better_network_higher_quality(self, tiny_prepared):
        rich = RobustMPC()
        rich.setup(tiny_prepared.manifest, 12.0)
        poor = RobustMPC()
        poor.setup(tiny_prepared.manifest, 12.0)
        q_rich = rich.choose(
            _ctx(tiny_prepared, tput=40e6, samples=(40e6,) * 5)
        ).quality
        q_poor = poor.choose(
            _ctx(tiny_prepared, tput=1e6, samples=(1e6,) * 5)
        ).quality
        assert q_rich > q_poor

    def test_error_discount_conservative(self, tiny_prepared):
        stable = RobustMPC()
        stable.setup(tiny_prepared.manifest, 12.0)
        wild = RobustMPC()
        wild.setup(tiny_prepared.manifest, 12.0)
        q_stable = stable.choose(
            _ctx(tiny_prepared, samples=(8e6,) * 5)
        ).quality
        # Feed wildly varying samples one decision at a time so the
        # prediction-error history builds up.
        history = (2e6, 16e6, 2e6, 16e6, 2e6)
        for i in range(2, len(history) + 1):
            decision = wild.choose(
                _ctx(tiny_prepared, samples=history[:i])
            )
        assert decision.quality <= q_stable

    def test_switch_penalty_smooths(self, tiny_prepared):
        abr = RobustMPC(switch_penalty=50.0)
        abr.setup(tiny_prepared.manifest, 12.0)
        decision = abr.choose(
            _ctx(tiny_prepared, samples=(20e6,) * 5, last=2)
        )
        # A huge switching penalty keeps the choice near the last quality.
        assert abs(decision.quality - 2) <= 2


class TestBeta:
    def test_reliable_only(self, tiny_prepared):
        abr = BetaABR(tiny_prepared)
        abr.setup(tiny_prepared.manifest, 8.0)
        decision = abr.choose(_ctx(tiny_prepared, tput=5e6))
        assert decision.unreliable is False

    def test_bdrop_variant_between_levels(self, tiny_prepared):
        abr = BetaABR(tiny_prepared)
        level = abr._level(10, 0)
        assert level.bdrop_bytes < level.full_bytes
        assert level.bdrop_score < 1.0
        segment = tiny_prepared.video.segment(10, 0)
        assert set(level.bdrop_frames) == set(
            segment.frames.unreferenced_indices()
        )

    def test_upgrades_via_bdrop(self, tiny_prepared):
        abr = BetaABR(tiny_prepared, safety=1.0)
        abr.setup(tiny_prepared.manifest, 8.0)
        # Find a budget where the full segment of q+1 does not fit but
        # the b-dropped variant does.
        for tput in (1e6, 2e6, 3e6, 4e6, 6e6, 8e6):
            decision = abr.choose(_ctx(tiny_prepared, tput=tput))
            if decision.target_bytes is not None:
                assert decision.skip_frames
                assert decision.target_bytes < tiny_prepared.manifest.entry(
                    decision.quality, 1
                ).total_bytes
                return
        pytest.skip("no b-drop opportunity at probed rates")

    def test_worst_case_restart_to_lowest(self, tiny_prepared):
        abr = BetaABR(tiny_prepared)
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared))
        action = abr.control(_progress(buffer_s=0.5, tput=5e5))
        assert action.verb is ControlVerb.RESTART
        assert action.restart_quality == 0


class TestQoeUtility:
    def test_monotone_in_score(self):
        values = [qoe_utility(s) for s in (0.5, 0.8, 0.9, 0.99, 1.0)]
        assert values == sorted(values)

    def test_metric_pluggable(self):
        assert qoe_utility(0.95, VMAF) != qoe_utility(0.95, SSIM)
        assert qoe_utility(1.0, VMAF) == pytest.approx(1.0)


class TestBolaSsim:
    def test_candidates_include_virtual_levels(self, tiny_prepared):
        abr = BolaSsim()
        abr.setup(tiny_prepared.manifest, 8.0)
        options = abr.candidates(_ctx(tiny_prepared))
        assert any(o.target_bytes is not None for o in options)
        assert any(o.target_bytes is None for o in options)

    def test_candidates_pareto_frontier(self, tiny_prepared):
        abr = BolaSsim()
        abr.setup(tiny_prepared.manifest, 8.0)
        options = abr.candidates(_ctx(tiny_prepared))
        sizes = [o.size_bytes for o in options]
        utilities = [o.utility for o in options]
        assert sizes == sorted(sizes)
        assert utilities == sorted(utilities)
        assert all(u >= 0 for u in utilities)

    def test_without_voxel_full_segments_only(self, tiny_prepared):
        abr = BolaSsim()
        abr.setup(tiny_prepared.manifest, 8.0)
        options = abr.candidates(_ctx(tiny_prepared, voxel=False))
        assert all(o.target_bytes is None for o in options)


class TestAbrStar:
    def test_truncates_when_behind(self, tiny_prepared):
        abr = AbrStar()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared))
        action = abr.control(
            _progress(
                quality=12, sent=1_800_000, total=2_000_000,
                buffer_s=0.05, tput=2e5,
            )
        )
        assert action.verb is ControlVerb.TRUNCATE
        assert action.truncate_to_bytes is not None
        assert action.truncate_to_bytes >= 1_800_000

    def test_continues_when_on_track(self, tiny_prepared):
        abr = AbrStar()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared))
        action = abr.control(
            _progress(sent=1_000_000, total=2_000_000, buffer_s=6.0, tput=9e6)
        )
        assert action.verb is ControlVerb.CONTINUE

    def test_restarts_when_partial_would_be_terrible(self, tiny_prepared):
        abr = AbrStar()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared, tput=8e6))
        # Barely anything sent, deadline nearly gone: the projected
        # partial is junk, a lower full level beats it.
        action = abr.control(
            _progress(
                quality=12, sent=100_000, total=6_000_000,
                buffer_s=2.0, tput=2e6,
            )
        )
        assert action.verb in (ControlVerb.RESTART, ControlVerb.TRUNCATE)
        if action.verb is ControlVerb.RESTART:
            assert action.restart_quality < 12

    def test_bandwidth_safety_validated(self):
        with pytest.raises(ValueError):
            AbrStar(bandwidth_safety=0.1)

    def test_decisions_prefer_unreliable(self, tiny_prepared):
        abr = AbrStar()
        abr.setup(tiny_prepared.manifest, 8.0)
        assert abr.choose(_ctx(tiny_prepared)).unreliable is True

    def test_grace_period_no_control(self, tiny_prepared):
        abr = AbrStar()
        abr.setup(tiny_prepared.manifest, 8.0)
        abr.choose(_ctx(tiny_prepared))
        action = abr.control(
            _progress(elapsed=0.1, buffer_s=0.1, tput=1e5)
        )
        assert action.verb is ControlVerb.CONTINUE
