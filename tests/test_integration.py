"""Integration tests: end-to-end behaviour across the full stack.

These assert the *paper-level* qualitative properties on the tiny video
and (sparingly) the real catalog: partial reliability lowers rebuffering,
VOXEL keeps partial segments instead of re-downloading, selective
retransmission repairs losses, and the backward-compatibility story.
"""

import numpy as np
import pytest

from repro import prepare_video, stream
from repro.abr import make_abr
from repro.network.traces import (
    NetworkTrace,
    constant_trace,
    riiser_3g_corpus,
    tmobile_trace,
)
from repro.player.session import SessionConfig, StreamingSession


def _run(prepared, abr_name, trace, buf=1, pr=True, n=4, **cfg):
    sessions = []
    for i in range(n):
        abr = make_abr(abr_name, prepared=prepared)
        config = SessionConfig(
            buffer_segments=buf, partially_reliable=pr, **cfg
        )
        session = StreamingSession(
            prepared, abr, trace.shifted(i * trace.duration / n), config
        )
        sessions.append(session.run())
    return sessions


class TestHeadlineResults:
    """The paper's core claims, on challenging low-bandwidth traces."""

    @pytest.fixture(scope="class")
    def corpus(self):
        return riiser_3g_corpus(count=8)

    @pytest.fixture(scope="class")
    def bbb(self):
        return prepare_video("bbb")

    def test_voxel_cuts_rebuffering_vs_bola(self, bbb, corpus):
        bola_stalls, voxel_stalls = [], []
        for trace in corpus:
            bola = _run(bbb, "bola", trace, pr=False, n=1)[0]
            voxel = _run(bbb, "abr_star", trace, pr=True, n=1)[0]
            bola_stalls.append(bola.buf_ratio)
            voxel_stalls.append(voxel.buf_ratio)
        # "at least 25% and at most 97% less rebuffering" — we assert the
        # direction and a substantial reduction of the aggregate.
        assert float(np.mean(voxel_stalls)) < 0.75 * float(
            np.mean(bola_stalls)
        )

    def test_voxel_skips_data_instead_of_stalling(self, bbb, corpus):
        voxel = _run(bbb, "abr_star", corpus[0], pr=True, n=1)[0]
        assert voxel.data_skipped_fraction > 0.0

    def test_partial_reliability_ablation(self, bbb, corpus):
        """Disabling unreliable streams ("VOXEL rel") costs rebuffering."""
        with_pr, without_pr = [], []
        for trace in corpus[:5]:
            a = _run(bbb, "abr_star", trace, pr=True, n=1)[0]
            b = _run(
                bbb, "abr_star", trace, pr=True, n=1,
                force_reliable_payload=True,
            )[0]
            with_pr.append(a.buf_ratio)
            without_pr.append(b.buf_ratio)
        # "VOXEL rel" keeps every feature except unreliable delivery, so
        # the only cost is retransmission overhead; on a handful of
        # traces that is a small effect — assert it never *helps* beyond
        # noise.
        assert float(np.mean(with_pr)) <= float(np.mean(without_pr)) + 0.01


class TestSelectiveRetransmission:
    def test_repairs_reduce_residual_loss(self, tiny_prepared):
        trace = tmobile_trace(seed=11)
        with_retx = _run(
            tiny_prepared, "abr_star", trace, buf=3, n=3,
            selective_retransmission=True,
        )
        without_retx = _run(
            tiny_prepared, "abr_star", trace, buf=3, n=3,
            selective_retransmission=False,
        )
        residual_with = np.mean(
            [s.residual_loss_fraction for s in with_retx]
        )
        residual_without = np.mean(
            [s.residual_loss_fraction for s in without_retx]
        )
        assert residual_with <= residual_without

    def test_repaired_segments_rescored(self, tiny_prepared):
        trace = tmobile_trace(seed=11)
        sessions = _run(tiny_prepared, "abr_star", trace, buf=3, n=3)
        repaired = [
            r for s in sessions for r in s.records if r.repaired_bytes > 0
        ]
        if not repaired:
            pytest.skip("no repair opportunities on this seed")
        for record in repaired:
            assert record.residual_loss_bytes < record.lost_bytes


class TestBackwardCompatibility:
    """§4.1/§4.2: VOXEL-unaware endpoints keep working, fully reliable."""

    @pytest.mark.parametrize(
        "server_aware,client_aware",
        [(False, True), (True, False), (False, False)],
    )
    def test_unaware_endpoints_stream_reliably(
        self, tiny_prepared, server_aware, client_aware
    ):
        abr = make_abr("bola", prepared=tiny_prepared)
        config = SessionConfig(
            buffer_segments=2,
            partially_reliable=True,
            server_voxel_aware=server_aware,
            client_voxel_aware=client_aware,
        )
        session = StreamingSession(
            tiny_prepared, abr, constant_trace(10.0), config
        )
        assert not session.http.voxel_capable
        metrics = session.run()
        assert len(metrics.records) == 6
        assert all(r.lost_bytes == 0 for r in metrics.records)
        assert all(r.skipped_frame_count == 0 for r in metrics.records)

    def test_unaware_manifest_view_used(self, tiny_prepared):
        abr = make_abr("bola", prepared=tiny_prepared)
        config = SessionConfig(client_voxel_aware=False)
        session = StreamingSession(
            tiny_prepared, abr, constant_trace(10.0), config
        )
        entry = session.manifest.entry(5, 0)
        assert entry.frame_order == ()
        assert entry.reliable_size == entry.total_bytes


class TestPublicApi:
    def test_stream_roundtrip(self, tiny_prepared):
        result = stream(
            tiny_prepared, abr="voxel", trace="constant:10.5",
            buffer_segments=2,
        )
        assert result.buf_ratio >= 0.0
        assert 0.0 < result.mean_ssim <= 1.0
        assert set(result.summary()) >= {"buf_ratio", "mean_ssim"}

    def test_stream_with_explicit_trace(self, tiny_prepared):
        trace = NetworkTrace("custom", np.full(60, 8.0))
        result = stream(tiny_prepared, network_trace=trace)
        assert len(result.metrics.records) == 6

    def test_stream_session_kwargs(self, tiny_prepared):
        result = stream(
            tiny_prepared, trace="constant:10.5", queue_packets=750
        )
        assert result.metrics.buf_ratio >= 0.0

    def test_prepare_video_cached(self):
        a = prepare_video("bbb")
        b = prepare_video("bbb")
        assert a is b

    def test_catalog_helpers(self):
        from repro import available_abrs, available_traces, available_videos

        assert "abr_star" in available_abrs()
        assert "bbb" in available_videos()
        assert "tmobile" in available_traces()


class TestVanillaOverQuicStar:
    """§5.1: vanilla ABRs gain from QUIC* without any redesign."""

    def test_bola_over_quicstar_streams_with_losses(self, tiny_prepared):
        trace = tmobile_trace(seed=8)
        sessions = _run(tiny_prepared, "bola", trace, buf=5, pr=True, n=3)
        assert all(len(s.records) == 6 for s in sessions)

    def test_transport_flavours_differ(self, tiny_prepared):
        trace = tmobile_trace(seed=8)
        quic = _run(tiny_prepared, "bola", trace, buf=5, pr=False, n=3)
        quicstar = _run(tiny_prepared, "bola", trace, buf=5, pr=True, n=3)
        bytes_quic = sum(
            r.bytes_delivered for s in quic for r in s.records
        )
        bytes_star = sum(
            r.bytes_delivered for s in quicstar for r in s.records
        )
        assert bytes_quic > 0 and bytes_star > 0
