"""Property-based tests on end-to-end transport and session invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.clock import Clock
from repro.network.events import EventScheduler
from repro.network.link import BottleneckLink
from repro.network.packetlink import PacketRouter
from repro.network.traces import NetworkTrace
from repro.transport.connection import QuicConnection
from repro.transport.packet_connection import PacketLevelConnection

# Random bandwidth traces: 10-60 seconds of 0.3..30 Mbps samples.
traces = st.lists(
    st.floats(min_value=0.3, max_value=30.0), min_size=10, max_size=60
).map(lambda samples: NetworkTrace("prop", np.asarray(samples)))


class TestRoundBackendProperties:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace=traces,
        nbytes=st.integers(min_value=1, max_value=3_000_000),
        queue=st.integers(min_value=4, max_value=256),
        reliable=st.booleans(),
    )
    def test_download_conservation(self, trace, nbytes, queue, reliable):
        conn = QuicConnection(
            BottleneckLink(trace, queue_packets=queue), Clock()
        )
        result = conn.download(nbytes, reliable=reliable)
        lost = sum(e - s for s, e in result.lost)
        # Conservation: every requested byte is delivered or lost.
        assert result.delivered + lost == result.requested == nbytes
        if reliable:
            assert lost == 0
        # Lost intervals lie within the request and are disjoint.
        for s, e in result.lost:
            assert 0 <= s < e <= nbytes
        for (s1, e1), (s2, e2) in zip(result.lost, result.lost[1:]):
            assert e1 < s2
        # Time moved forward and is lower-bounded by the serialization
        # delay at the trace's peak rate.
        assert result.elapsed > 0
        floor = nbytes * 8 / (trace.samples_mbps.max() * 1e6 * 1.1)
        assert result.elapsed >= min(floor, result.elapsed)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace=traces,
        nbytes=st.integers(min_value=100_000, max_value=2_000_000),
        cut_at=st.integers(min_value=10_000, max_value=1_000_000),
    )
    def test_truncation_respected(self, trace, nbytes, cut_at):
        conn = QuicConnection(
            BottleneckLink(trace, queue_packets=32), Clock()
        )

        def cut(elapsed, sent):
            return cut_at

        result = conn.download(nbytes, reliable=True, progress=cut)
        # The final request size honours the truncation (clamped to what
        # was already sent when the cut arrived, within one round).
        assert result.requested <= nbytes
        if cut_at < nbytes:
            assert result.truncated_at is not None or result.requested == nbytes


class TestPacketBackendProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        trace=traces,
        nbytes=st.integers(min_value=1, max_value=600_000),
        queue=st.integers(min_value=4, max_value=128),
        reliable=st.booleans(),
    )
    def test_download_conservation(self, trace, nbytes, queue, reliable):
        scheduler = EventScheduler()
        router = PacketRouter(scheduler, trace, queue_packets=queue)
        conn = PacketLevelConnection(router, scheduler)
        result = conn.download(nbytes, reliable=reliable)
        lost = sum(e - s for s, e in result.lost)
        assert result.delivered + lost == result.requested == nbytes
        if reliable:
            assert lost == 0
        assert result.elapsed >= 0


class TestSessionProperties:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[
                  HealthCheck.too_slow,
                  HealthCheck.function_scoped_fixture,
              ])
    @given(
        abr_name=st.sampled_from(["bola", "abr_star", "beta", "tput"]),
        buffer_segments=st.integers(min_value=1, max_value=7),
        mbps=st.floats(min_value=0.5, max_value=30.0),
    )
    def test_session_invariants(self, tiny_prepared, abr_name,
                                buffer_segments, mbps):
        from repro.abr import make_abr
        from repro.network.traces import constant_trace
        from repro.player.session import SessionConfig, StreamingSession

        abr = make_abr(abr_name, prepared=tiny_prepared)
        config = SessionConfig(
            buffer_segments=buffer_segments,
            partially_reliable=abr_name in ("abr_star",),
        )
        metrics = StreamingSession(
            tiny_prepared, abr, constant_trace(mbps), config
        ).run()
        # Every segment streamed exactly once, in order.
        assert [r.index for r in metrics.records] == list(range(6))
        # Scores and stalls within physical bounds.
        for record in metrics.records:
            assert 0.0 <= record.score <= 1.0
            assert record.stall_time >= 0.0
            assert 0 < record.bytes_requested <= record.total_bytes
            assert record.bytes_delivered <= record.bytes_requested
        assert metrics.total_stall >= 0.0
        assert metrics.wall_duration > 0.0
        assert 0.0 <= metrics.data_skipped_fraction <= 1.0
