"""Fleet engine: spec algebra, population expansion, cross-shard merge."""

from __future__ import annotations

import json

import pytest

from repro.experiments.fleet import (
    DEFAULT_GROUPS,
    ClientGroup,
    FleetSpec,
    expand_population,
    fleet_session_id,
    format_fleet_report,
    group_assignment,
    run_fleet,
    shard_clients,
)
from repro.experiments.multiclient import ClientSpec
from repro.experiments.runner import ExperimentConfig, run_trials
from repro.obs.attribution import FleetAttributor
from repro.obs.rollup import TraceRollup


def _tiny_groups(tiny_prepared):
    return tuple(
        ClientGroup(
            abr=abr,
            video=tiny_prepared.name,
            partially_reliable=pr,
            buffer_segments=2,
        )
        for abr, pr in (
            ("abr_star", True), ("bola", True),
            ("abr_star", False), ("bola", False),
        )
    )


def _tiny_spec(tiny_prepared, clients=12, shards=3, **over):
    over.setdefault("trace", "constant:40")
    return FleetSpec(
        clients=clients,
        shards=shards,
        groups=_tiny_groups(tiny_prepared),
        **over,
    )


# ---------------------------------------------------------------------------
# FleetSpec: frozen, round-trippable, content-hashed.
# ---------------------------------------------------------------------------
class TestFleetSpec:
    def test_roundtrip_preserves_spec_and_hash(self):
        spec = FleetSpec(clients=100, shards=4, trace="att", seed=7)
        again = FleetSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()
        assert FleetSpec.from_json(spec.to_json()) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown FleetSpec field"):
            FleetSpec.from_dict({"clients": 10, "shardz": 2})
        with pytest.raises(ValueError, match="unknown ClientGroup field"):
            ClientGroup.from_dict({"abr": "bola", "colour": "red"})

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            FleetSpec.from_dict([1, 2, 3])

    @pytest.mark.parametrize("kwargs", [
        {"clients": 0},
        {"shards": 0},
        {"clients": 4, "shards": 8},          # more shards than clients
        {"groups": ()},
        {"sample_rate": 1.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FleetSpec(**kwargs)

    def test_group_validation(self):
        with pytest.raises(ValueError, match="weight"):
            ClientGroup(weight=0.0)
        with pytest.raises(ValueError, match="buffer_segments"):
            ClientGroup(buffer_segments=0)

    def test_hash_neutral_defaults(self):
        # Fields at their defaults are omitted from the canonical JSON,
        # so hashes stay stable as resilience knobs are added.
        base = FleetSpec()
        explicit = FleetSpec(retry_budget=3, retry_backoff_s=0.5)
        assert base.spec_hash() == explicit.spec_hash()
        assert "retry_budget" not in base.to_dict()
        assert FleetSpec(retry_budget=5).spec_hash() != base.spec_hash()

    def test_with_override(self):
        spec = FleetSpec()
        bigger = spec.with_(clients=2000)
        assert bigger.clients == 2000
        assert bigger.shards == spec.shards
        assert bigger.spec_hash() != spec.spec_hash()

    def test_hashable(self):
        assert len({FleetSpec(), FleetSpec(), FleetSpec(seed=1)}) == 2

    def test_groups_list_coerced_to_tuple(self):
        spec = FleetSpec(groups=list(DEFAULT_GROUPS))
        assert isinstance(spec.groups, tuple)
        assert hash(spec) == hash(FleetSpec())


# ---------------------------------------------------------------------------
# Deterministic population expansion and shard assignment.
# ---------------------------------------------------------------------------
class TestPopulation:
    def test_assignment_is_pure_function_of_spec(self):
        spec = FleetSpec(clients=200, shards=8)
        assert group_assignment(spec) == group_assignment(spec)
        assert len(group_assignment(spec)) == spec.clients

    def test_seed_changes_assignment(self):
        a = group_assignment(FleetSpec(clients=500, shards=4, seed=0))
        b = group_assignment(FleetSpec(clients=500, shards=4, seed=1))
        assert a != b

    def test_weights_shape_the_mix(self):
        groups = (
            ClientGroup(abr="bola", weight=3.0),
            ClientGroup(abr="abr_star", weight=1.0),
        )
        spec = FleetSpec(clients=2000, shards=8, groups=groups)
        assignment = group_assignment(spec)
        share = assignment.count(0) / spec.clients
        # 3:1 weighting: the heavy group lands near 75% of the fleet.
        assert 0.70 < share < 0.80

    def test_single_group_is_homogeneous(self):
        spec = FleetSpec(clients=50, shards=2, groups=(ClientGroup(),))
        assert set(group_assignment(spec)) == {0}
        population = expand_population(spec)
        assert all(isinstance(c, ClientSpec) for c in population)
        assert all(c.abr == "bola" for c in population)

    def test_shards_partition_the_fleet(self):
        spec = FleetSpec(clients=103, shards=8)  # deliberately uneven
        seen = []
        for shard in range(spec.shards):
            members = shard_clients(spec, shard)
            assert members  # every shard holds at least one client
            seen.extend(members)
        assert sorted(seen) == list(range(spec.clients))

    def test_shard_index_validated(self):
        spec = FleetSpec(clients=16, shards=4)
        with pytest.raises(ValueError, match="out of range"):
            shard_clients(spec, 4)

    def test_session_ids_globally_unique(self):
        spec = FleetSpec(clients=64, shards=8)
        assignment = group_assignment(spec)
        ids = [
            fleet_session_id(spec, i, spec.groups[assignment[i]])
            for i in range(spec.clients)
        ]
        assert len(set(ids)) == spec.clients


# ---------------------------------------------------------------------------
# The merge: byte-identical reports at any worker count.
# ---------------------------------------------------------------------------
# Pinned golden: 12 tiny-video clients over 3 shards on constant:40.
# Computed once from the canonical report JSON; any change to the
# kernel, transport, merge order, or report schema shows up here.
GOLDEN_TINY_FLEET_HASH = "2c4fd532f1416772"


class TestFleetMerge:
    def test_workers_1_vs_2_byte_identical(self, tiny_prepared):
        spec = _tiny_spec(tiny_prepared)
        prepared = {tiny_prepared.name: tiny_prepared}
        serial = run_fleet(spec, workers=1, prepared_map=prepared)
        parallel = run_fleet(spec, workers=2, prepared_map=prepared)
        assert json.dumps(serial.report(), sort_keys=True) == \
            json.dumps(parallel.report(), sort_keys=True)
        assert serial.fleet_hash() == parallel.fleet_hash()

    def test_golden_fleet_hash(self, tiny_prepared):
        spec = _tiny_spec(tiny_prepared)
        result = run_fleet(
            spec, prepared_map={tiny_prepared.name: tiny_prepared}
        )
        assert result.fleet_hash() == GOLDEN_TINY_FLEET_HASH

    def test_report_shape(self, tiny_prepared):
        spec = _tiny_spec(tiny_prepared)
        result = run_fleet(
            spec, prepared_map={tiny_prepared.name: tiny_prepared}
        )
        report = result.report()
        assert report["clients"] == spec.clients
        assert len(report["shards"]) == spec.shards
        assert sum(row["clients"] for row in report["shards"]) == \
            spec.clients
        assert 0.0 < report["jain"]["fleet"] <= 1.0
        assert len(report["jain"]["per_shard"]) == spec.shards
        assert report["rollup"]["sessions_seen"] == spec.clients
        assert report["attribution"]["ok"] is True
        assert len(result.attribution.results()) == spec.clients
        # Every populated group appears with a client count.
        assert sum(g["clients"] for g in report["groups"].values()) == \
            spec.clients
        # Per-shard trace weather: each cell seeds its own trace.
        seeds = [row["trace_seed"] for row in report["shards"]]
        assert seeds == [spec.seed + s for s in range(spec.shards)]

    def test_rows_off_by_default_and_kept_on_request(self, tiny_prepared):
        spec = _tiny_spec(tiny_prepared, clients=6, shards=2)
        prepared = {tiny_prepared.name: tiny_prepared}
        lean = run_fleet(spec, prepared_map=prepared)
        assert lean.rows is None
        full = run_fleet(spec, prepared_map=prepared, keep_rows=True)
        assert full.rows is not None and len(full.rows) == spec.clients
        # Rows don't perturb the merged artifacts.
        assert full.fleet_hash() == lean.fleet_hash()

    def test_format_fleet_report(self, tiny_prepared):
        spec = _tiny_spec(tiny_prepared, clients=6, shards=2)
        result = run_fleet(
            spec, prepared_map={tiny_prepared.name: tiny_prepared}
        )
        text = format_fleet_report(result)
        assert spec.spec_hash() in text
        assert result.fleet_hash() in text
        assert "Jain" in text


# ---------------------------------------------------------------------------
# run_trials observer fold (the lifted workers>1 restriction).
# ---------------------------------------------------------------------------
class TestObserverFold:
    def _config(self, tiny_prepared):
        return ExperimentConfig(
            video=tiny_prepared.name,
            abr="bola",
            trace="constant:12",
            buffer_segments=2,
            repetitions=3,
        )

    def test_mergeable_observers_fold_identically(self, tiny_prepared):
        config = self._config(tiny_prepared)
        artifacts = []
        for workers in (1, 2):
            rollup = TraceRollup()
            attributor = FleetAttributor()
            run_trials(
                config,
                prepared=tiny_prepared,
                workers=workers,
                observers=[rollup.feed, attributor.feed],
            )
            artifacts.append((
                json.dumps(rollup.to_dict(), sort_keys=True),
                json.dumps(
                    attributor.combined().to_dict(), sort_keys=True
                ),
            ))
        assert artifacts[0] == artifacts[1]

    def test_non_mergeable_observer_still_requires_serial(
        self, tiny_prepared
    ):
        config = self._config(tiny_prepared)
        events = []
        with pytest.raises(ValueError, match="merge algebra"):
            run_trials(
                config,
                prepared=tiny_prepared,
                workers=2,
                observers=[events.append],
            )
        # The same observer is fine serially.
        run_trials(
            config, prepared=tiny_prepared, workers=1,
            observers=[events.append],
        )
        assert events
