"""Multi-client runs and the parallel trial executor: determinism first.

The two headline guarantees of the shared kernel refactor:

* a multi-client run is a pure function of (specs, trace, seed) — re-run
  it and the global trace and every per-client metric is byte-identical;
* ``run_trials(workers=K)`` is byte-identical to the serial run
  (sessions, metrics dump, collected traces).
"""

from __future__ import annotations

import pytest

from repro.experiments.multiclient import (
    ClientSpec,
    run_multiclient,
)
from repro.experiments.runner import ExperimentConfig, run_trials
from repro.network.traces import constant_trace
from repro.obs import audit_events
from repro.obs.tracer import Tracer


def _specs(count, video):
    cycle = [
        ("abr_star", True),
        ("bola", True),
        ("abr_star", False),
        ("bola", False),
    ]
    return [
        ClientSpec(
            abr=cycle[i % 4][0],
            video=video,
            partially_reliable=cycle[i % 4][1],
        )
        for i in range(count)
    ]


def _run(tiny_prepared, count=2, seed=0, tracer=None):
    return run_multiclient(
        _specs(count, tiny_prepared.name),
        trace=constant_trace(12.0),
        seed=seed,
        tracer=tracer,
        prepared_map={tiny_prepared.name: tiny_prepared},
    )


# ---------------------------------------------------------------------------
# Multi-client determinism.
# ---------------------------------------------------------------------------
def test_two_client_rerun_is_byte_identical(tiny_prepared):
    tracer_a, tracer_b = Tracer(), Tracer()
    first = _run(tiny_prepared, tracer=tracer_a)
    second = _run(tiny_prepared, tracer=tracer_b)
    assert tracer_a.to_jsonl() == tracer_b.to_jsonl()
    for a, b in zip(first.clients, second.clients):
        assert a.session_id == b.session_id
        assert a.metrics == b.metrics


def test_four_client_mixed_run_passes_audit(tiny_prepared):
    tracer = Tracer()
    result = _run(tiny_prepared, count=4, tracer=tracer)
    assert len(result.clients) == 4
    labels = {c.spec.label() for c in result.clients}
    assert labels == {"abr_star/Q*", "bola/Q*", "abr_star/Q", "bola/Q"}
    # Every session streamed the whole video despite contention.
    for client in result.clients:
        assert len(client.metrics.records) == 6
        assert client.throughput_mbps > 0
    assert 0.0 < result.jain_index <= 1.0
    report = audit_events(tracer.events)
    assert report.ok, [str(v) for v in report.violations]


def test_multiclient_tags_events_and_emits_link_stats(tiny_prepared):
    tracer = Tracer()
    _run(tiny_prepared, count=2, tracer=tracer)
    events = tracer.events
    sessions = {e.fields.get("session_id") for e in events if e.fields.get("session_id")}
    assert len(sessions) == 2
    link_stats = [e for e in events if e.type == "link_stats"]
    assert len(link_stats) == 1
    stats = link_stats[-1].fields
    assert stats["flows"] == 2
    assert (
        stats["delivered_packets"] + stats["dropped_packets"]
        == stats["offered_packets"]
    )


def test_multiclient_requires_at_least_one_client(tiny_prepared):
    with pytest.raises(ValueError, match="at least one client"):
        run_multiclient([], trace=constant_trace(12.0))


def test_multiclient_packet_backend_runs(tiny_prepared):
    result = run_multiclient(
        _specs(2, tiny_prepared.name),
        trace=constant_trace(12.0),
        backend="packet",
        prepared_map={tiny_prepared.name: tiny_prepared},
    )
    for client in result.clients:
        assert len(client.metrics.records) == 6
    assert 0.0 < result.jain_index <= 1.0


# ---------------------------------------------------------------------------
# Parallel trial executor: serial/parallel identity.
# ---------------------------------------------------------------------------
def _config(video):
    return ExperimentConfig(
        video=video,
        abr="bola",
        trace="constant:16",
        repetitions=4,
        seed=3,
    )


def test_parallel_trials_identical_to_serial(tiny_prepared):
    config = _config(tiny_prepared.name)
    serial = run_trials(
        config, prepared=tiny_prepared, collect_traces=True
    )
    parallel = run_trials(
        config, prepared=tiny_prepared, workers=2, collect_traces=True
    )
    assert serial.sessions == parallel.sessions
    assert serial.metrics == parallel.metrics
    assert serial.traces == parallel.traces
    assert len(serial.traces) == 4


def test_parallel_traces_off_by_default(tiny_prepared):
    summary = run_trials(_config(tiny_prepared.name), prepared=tiny_prepared)
    assert summary.traces is None


# ---------------------------------------------------------------------------
# Labels and session ids: distinguishable clients in mixed populations.
# ---------------------------------------------------------------------------
def test_label_index_disambiguates_repeated_specs():
    spec = ClientSpec(abr="bola", video="bbb", partially_reliable=True)
    assert spec.label() == "bola/Q*"
    assert spec.label(3) == "bola/Q*#3"
    assert spec.label(0) == "bola/Q*#0"


def test_result_rows_carry_unique_labels(tiny_prepared):
    # 8 clients over a 4-way cycle: specs repeat, labels must not.
    result = _run(tiny_prepared, count=8)
    labels = [row["label"] for row in result.rows()]
    assert len(labels) == 8
    assert len(set(labels)) == 8, labels
    # Ordering survives: row i belongs to client i.
    for i, label in enumerate(labels):
        assert label.endswith(f"#{i}")


def test_custom_session_ids_tag_events(tiny_prepared):
    tracer = Tracer()
    ids = ["alpha", "beta"]
    result = run_multiclient(
        _specs(2, tiny_prepared.name),
        trace=constant_trace(12.0),
        tracer=tracer,
        prepared_map={tiny_prepared.name: tiny_prepared},
        session_ids=ids,
    )
    assert [c.session_id for c in result.clients] == ids
    tagged = {
        e.fields.get("session_id")
        for e in tracer.events
        if e.fields.get("session_id")
    }
    assert tagged == set(ids)


def test_session_ids_length_mismatch_rejected(tiny_prepared):
    with pytest.raises(ValueError):
        run_multiclient(
            _specs(2, tiny_prepared.name),
            trace=constant_trace(12.0),
            prepared_map={tiny_prepared.name: tiny_prepared},
            session_ids=["only-one"],
        )
