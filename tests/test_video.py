"""Tests for the synthetic codec: ladder, content model, GOP, encoder."""

import numpy as np
import pytest

from repro.video.content import (
    ALL_VIDEOS,
    CANONICAL_VIDEOS,
    ContentModel,
    ContentProfile,
    YOUTUBE_VIDEOS,
    get_profile,
)
from repro.video.encoder import encode_video
from repro.video.frames import FrameType, validate_reference_graph
from repro.video.gop import MINI_GOP, build_segment_frames
from repro.video.ladder import (
    FRAMES_PER_SEGMENT,
    NUM_LEVELS,
    SEGMENT_DURATION,
    default_ladder,
)
from repro.video.library import clear_cache, get_video


class TestLadder:
    def test_thirteen_levels(self):
        assert len(default_ladder()) == NUM_LEVELS == 13

    def test_bitrates_match_table2(self):
        ladder = default_ladder()
        assert ladder[0].avg_bitrate_mbps == pytest.approx(0.16)
        assert ladder[9].avg_bitrate_mbps == pytest.approx(4.3)
        assert ladder[12].avg_bitrate_mbps == pytest.approx(10.0)

    def test_bitrates_strictly_increasing(self):
        rates = [lvl.avg_bitrate_mbps for lvl in default_ladder()]
        assert rates == sorted(rates)
        assert len(set(rates)) == len(rates)

    def test_resolutions(self):
        ladder = default_ladder()
        assert ladder[0].height == 144
        assert ladder[12].height == 2160

    def test_avg_segment_bytes(self):
        q12 = default_ladder()[12]
        assert q12.avg_segment_bytes(4.0) == pytest.approx(5e6)

    def test_96_frames_per_segment(self):
        assert FRAMES_PER_SEGMENT == 96


class TestCatalog:
    def test_canonical_plus_youtube(self):
        assert CANONICAL_VIDEOS == ["bbb", "ed", "sintel", "tos"]
        assert len(YOUTUBE_VIDEOS) == 10
        assert len(ALL_VIDEOS) == 14

    def test_get_profile_aliases(self):
        assert get_profile("BigBuckBunny").name == "bbb"
        assert get_profile("BBB").name == "bbb"

    def test_unknown_profile_raises(self):
        with pytest.raises(KeyError, match="unknown video"):
            get_profile("nosuchvideo")

    def test_ed_is_1080p_only(self):
        assert get_profile("ed").max_resolution_height == 1080


class TestContentModel:
    def test_deterministic(self):
        profile = get_profile("bbb")
        a = ContentModel(profile).segments()
        b = ContentModel(profile).segments()
        assert len(a) == len(b) == profile.segments
        for seg_a, seg_b in zip(a, b):
            assert seg_a.activity == seg_b.activity
            assert np.array_equal(seg_a.frame_motion, seg_b.frame_motion)

    def test_different_videos_differ(self):
        a = ContentModel(get_profile("bbb")).segments()
        b = ContentModel(get_profile("sintel")).segments()
        assert any(
            x.activity != y.activity for x, y in zip(a, b)
        )

    def test_value_ranges(self):
        for seg in ContentModel(get_profile("ed")).segments():
            assert 0.0 < seg.activity <= 1.0
            assert 0.0 < seg.motion <= 1.0
            assert 0.0 < seg.complexity <= 1.0
            assert seg.size_multiplier > 0
            assert (seg.frame_motion > 0).all()
            assert (seg.frame_motion <= 1.0).all()

    def test_p9_is_static_and_p10_is_busy(self):
        p9 = ContentModel(get_profile("p9")).segments()
        p10 = ContentModel(get_profile("p10")).segments()
        assert np.mean([s.motion for s in p9]) < 0.25
        assert np.mean([s.motion for s in p10]) > 0.6


class TestGop:
    def test_structure(self, segment):
        frames = segment.frames
        assert frames[0].ftype is FrameType.I
        for frame in frames:
            if frame.index == 0:
                continue
            expected = (
                FrameType.P if frame.index % MINI_GOP == 0 else FrameType.B
            )
            assert frame.ftype is expected

    def test_sizes_sum_exactly(self, tiny_video):
        for quality in (0, 6, 12):
            for seg in tiny_video.segments[quality]:
                assert seg.frames.total_bytes == seg.total_bytes

    def test_reference_graph_valid(self, tiny_video):
        for quality in (0, 12):
            for seg in tiny_video.segments[quality]:
                validate_reference_graph(seg.frames.frames)

    def test_byte_shares_near_paper(self, bbb_video):
        seg = bbb_video.segment(12, 3)
        by_type = {FrameType.I: 0, FrameType.P: 0, FrameType.B: 0}
        for frame in seg.frames:
            by_type[frame.ftype] += frame.size
        total = seg.total_bytes
        assert 0.08 <= by_type[FrameType.I] / total <= 0.25
        assert 0.5 <= by_type[FrameType.P] / total <= 0.8
        assert 0.1 <= by_type[FrameType.B] / total <= 0.35

    def test_unreferenced_frames_are_b(self, segment):
        frames = segment.frames
        for idx in frames.unreferenced_indices():
            assert frames[idx].ftype is FrameType.B

    def test_too_short_segment_rejected(self):
        content = ContentModel(get_profile("bbb"), frames_per_segment=96)
        seg = content.segments()[0]
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="too short"):
            build_segment_frames(seg, 10000, duration=0.02, fps=24.0, rng=rng)


class TestEncoder:
    def test_all_levels_and_segments(self, tiny_video):
        assert tiny_video.num_levels == 13
        assert tiny_video.num_segments == 6
        assert tiny_video.duration == pytest.approx(6 * SEGMENT_DURATION)

    def test_mean_bitrate_matches_ladder(self, bbb_video):
        for quality in (4, 9, 12):
            mean = np.mean(bbb_video.segment_bitrates_mbps(quality))
            target = bbb_video.ladder[quality].avg_bitrate_mbps
            assert mean == pytest.approx(target, rel=0.05)

    def test_std_matches_table1(self, bbb_video):
        assert bbb_video.size_std_mbps(12) == pytest.approx(3.77, abs=0.4)

    def test_vbr_cap_respected(self, bbb_video):
        for quality in (6, 12):
            avg = bbb_video.ladder[quality].avg_bitrate_mbps
            for rate in bbb_video.segment_bitrates_mbps(quality):
                assert rate <= 2.15 * avg  # 2x cap plus mild realization noise

    def test_size_pattern_consistent_across_levels(self, bbb_video):
        """Hard segments are big at every quality level (Fig. 15)."""
        q12 = np.array(bbb_video.segment_sizes(12), dtype=float)
        q6 = np.array(bbb_video.segment_sizes(6), dtype=float)
        correlation = np.corrcoef(q12, q6)[0, 1]
        assert correlation > 0.95

    def test_ed_top_levels_capped_at_1080p(self):
        video = get_video("ed")
        assert video.ladder[12].height == 1080
        assert video.ladder[12].avg_bitrate_mbps == pytest.approx(10.0)

    def test_deterministic_encode(self):
        profile = get_profile("tos")
        a = encode_video(profile)
        b = encode_video(profile)
        assert a.segment_sizes(12) == b.segment_sizes(12)
        assert a.segment(12, 0).frames[50].size == b.segment(12, 0).frames[50].size

    def test_library_cache(self):
        clear_cache()
        first = get_video("bbb")
        second = get_video("bbb")
        assert first is second
        clear_cache()
        third = get_video("bbb")
        assert third is not first
