"""Invariant auditor: corrupted-trace corpus + clean-session audits.

Each corruption targets exactly one invariant and asserts both that it
fires and that it pins the violation to the right event index; the
clean-session tests assert real traces from both transport backends
audit green.
"""

from __future__ import annotations

import pytest

from repro.abr import make_abr
from repro.network.traces import get_trace
from repro.obs import (
    INVARIANTS,
    TraceAuditor,
    Tracer,
    audit_events,
    format_report,
)
from repro.obs import events as ev
from repro.obs.events import TraceEvent
from repro.player.session import SessionConfig, StreamingSession


def _event(seq: int, t: float, type_: str, **fields) -> TraceEvent:
    event = TraceEvent(seq=seq, t=t, type=type_, fields=fields)
    event.validate()
    return event


def _session_start(seq: int = 0, t: float = 0.0, **overrides) -> TraceEvent:
    fields = dict(
        video="tinytest", abr="abr_star", num_segments=3,
        segment_duration=2.0, buffer_capacity_s=4.0, backend="round",
        partially_reliable=True, num_levels=13,
    )
    fields.update(overrides)
    return _event(seq, t, ev.SESSION_START, **fields)


def _names(report):
    return [v.invariant for v in report.violations]


# ---------------------------------------------------------------------------
# Corrupted corpus: each stream breaks exactly one law.
# ---------------------------------------------------------------------------
class TestCorruptedTraces:
    def test_out_of_order_timestamps(self):
        events = [
            _session_start(),
            _event(1, 5.0, ev.STALL, duration=0.5, segment=1),
            _event(2, 4.0, ev.STALL, duration=0.5, segment=1),
        ]
        report = audit_events(events)
        assert _names(report) == ["monotone_clock"]
        assert report.violations[0].index == 2
        assert "runs backwards" in report.violations[0].message

    def test_non_increasing_sequence_numbers(self):
        events = [
            _session_start(seq=5),
            _event(5, 1.0, ev.STALL, duration=0.5, segment=0),
        ]
        report = audit_events(events)
        assert _names(report) == ["monotone_clock"]
        assert report.violations[0].index == 1

    def test_negative_buffer_level(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.BUFFER_SAMPLE, segment=0, level_s=-0.25,
                   capacity_s=4.0),
        ]
        report = audit_events(events)
        assert _names(report) == ["buffer_continuity"]
        assert report.violations[0].index == 1
        assert "negative" in report.violations[0].message

    def test_buffer_overfill(self):
        # Capacity 4s + one 2s in-flight segment = 6s hard ceiling.
        events = [
            _session_start(),
            _event(1, 1.0, ev.BUFFER_SAMPLE, segment=0, level_s=6.5,
                   capacity_s=4.0),
        ]
        report = audit_events(events)
        assert _names(report) == ["buffer_continuity"]
        assert "capacity" in report.violations[0].message

    def test_buffer_discontinuity(self):
        # 3 seconds elapse with no recorded stall, one 2s segment pushed:
        # 2.0 - 3.0 + 2.0 = 1.0s expected, but the trace claims 2.0s.
        events = [
            _session_start(),
            _event(1, 2.0, ev.BUFFER_SAMPLE, segment=0, level_s=2.0,
                   capacity_s=4.0),
            _event(2, 5.0, ev.BUFFER_SAMPLE, segment=1, level_s=2.0,
                   capacity_s=4.0),
        ]
        report = audit_events(events)
        assert _names(report) == ["buffer_continuity"]
        assert report.violations[0].index == 2
        assert "continuity" in report.violations[0].message

    def test_buffer_continuity_accepts_recorded_stalls(self):
        # Same stream, but a 1s stall explains the missing drain.
        events = [
            _session_start(),
            _event(1, 2.0, ev.BUFFER_SAMPLE, segment=0, level_s=2.0,
                   capacity_s=4.0),
            _event(2, 4.5, ev.STALL, duration=1.0, segment=1),
            _event(3, 5.0, ev.BUFFER_SAMPLE, segment=1, level_s=2.0,
                   capacity_s=4.0),
        ]
        assert "buffer_continuity" not in _names(audit_events(events))

    def test_cwnd_overshoot(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.TRANSPORT_ROUND, round=1, rtt=0.05,
                   offered=20, dropped=0, cwnd=10.0),
        ]
        report = audit_events(events)
        assert _names(report) == ["cwnd_compliance"]
        assert report.violations[0].index == 1
        assert "escaped congestion control" in report.violations[0].message

    def test_dropped_exceeds_offered(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.TRANSPORT_ROUND, round=1, rtt=0.05,
                   offered=4, dropped=5, cwnd=10.0),
        ]
        report = audit_events(events)
        assert _names(report) == ["cwnd_compliance"]

    def test_byte_conservation_mismatch(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.DOWNLOAD_START, segment=0, quality=3,
                   wire_bytes=1_000_000, attempt=0),
            _event(2, 2.0, ev.DOWNLOAD_END, segment=0, quality=3,
                   bytes_requested=1_000_000, bytes_delivered=900_000,
                   elapsed=1.0, truncated=False, restarts=0,
                   lost_bytes=50_000, stall=0.0),
        ]
        report = audit_events(events)
        assert _names(report) == ["byte_conservation"]
        assert report.violations[0].index == 2
        assert "950000 != requested 1000000" in report.violations[0].message

    def test_request_beyond_wire_bytes(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.DOWNLOAD_START, segment=0, quality=3,
                   wire_bytes=500_000, attempt=0),
            _event(2, 2.0, ev.DOWNLOAD_END, segment=0, quality=3,
                   bytes_requested=600_000, bytes_delivered=600_000,
                   elapsed=1.0, truncated=False, restarts=0,
                   lost_bytes=0, stall=0.0),
        ]
        report = audit_events(events)
        assert "stream_limit" in _names(report)

    def test_truncate_into_reliable_prefix(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.TRUNCATE, segment=0, quality=3,
                   bytes_requested=80_000, wire_bytes=1_000_000,
                   reliable_bytes=120_000),
        ]
        report = audit_events(events)
        assert _names(report) == ["frame_drop_legality"]
        assert report.violations[0].index == 1
        assert "reliable prefix" in report.violations[0].message

    def test_truncate_without_reliable_bytes_unchecked(self):
        # Plain-QUIC truncation carries no reliable prefix floor.
        events = [
            _session_start(),
            _event(1, 1.0, ev.TRUNCATE, segment=0, quality=3,
                   bytes_requested=80_000, wire_bytes=1_000_000),
        ]
        assert audit_events(events).ok

    def test_quality_outside_ladder(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.ABR_DECISION, segment=0, quality=13,
                   target_bytes=None, unreliable=True, wait_s=0.0,
                   buffer_level_s=0.0, throughput_bps=1e6,
                   expected_score=0.9),
        ]
        report = audit_events(events)
        assert _names(report) == ["abr_legality"]
        assert "outside the ladder" in report.violations[0].message

    def test_decisions_walk_backwards(self):
        decision = dict(target_bytes=None, unreliable=True, wait_s=0.0,
                        buffer_level_s=0.0, throughput_bps=1e6,
                        expected_score=0.9)
        events = [
            _session_start(),
            _event(1, 1.0, ev.ABR_DECISION, segment=2, quality=3,
                   **decision),
            _event(2, 2.0, ev.ABR_DECISION, segment=1, quality=3,
                   **decision),
        ]
        report = audit_events(events)
        assert _names(report) == ["abr_legality"]
        assert report.violations[0].index == 2

    def test_download_quality_contradicts_decision(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.ABR_DECISION, segment=0, quality=3,
                   target_bytes=None, unreliable=True, wait_s=0.0,
                   buffer_level_s=0.0, throughput_bps=1e6,
                   expected_score=0.9),
            _event(2, 1.0, ev.DOWNLOAD_START, segment=0, quality=7,
                   wire_bytes=1_000_000, attempt=0),
        ]
        report = audit_events(events)
        assert _names(report) == ["abr_legality"]
        assert "authorized quality 3" in report.violations[0].message

    def test_stall_accounting_mismatch(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.STALL, duration=0.5, segment=1),
            _event(2, 10.0, ev.SESSION_END, buf_ratio=0.5,
                   total_stall=3.0, startup_delay=0.2, mean_score=0.9,
                   segments=0),
        ]
        report = audit_events(events)
        names = _names(report)
        assert "stall_accounting" in names
        first = report.violations[0]
        assert first.index == 2
        assert "sum to 0.5" in first.message

    def test_reliable_stream_losing_bytes(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.PACKET_LOSS, dropped_packets=2,
                   lost_bytes=2800, reliable=True),
        ]
        report = audit_events(events)
        assert _names(report) == ["byte_conservation"]


# ---------------------------------------------------------------------------
# Retry accounting: failures must resolve, bytes must be conserved.
# ---------------------------------------------------------------------------
class TestRetryAccounting:
    def _timeout(self, seq, t, segment=0, accounted=1000, delivered=1000):
        return _event(
            seq, t, ev.REQUEST_TIMEOUT, segment=segment, attempt=0,
            elapsed=2.0, accounted_bytes=accounted,
            delivered_bytes=delivered,
        )

    def test_unresolved_failure_flagged_at_end(self):
        report = audit_events([_session_start(), self._timeout(1, 2.0)])
        assert _names(report) == ["retry_accounting"]
        assert "never resolved" in report.violations[0].message

    def test_retry_resolves_failure(self):
        events = [
            _session_start(),
            self._timeout(1, 2.0),
            _event(2, 2.5, ev.RETRY, segment=0, attempt=1,
                   backoff_s=0.5, resume_bytes=1000,
                   remaining_bytes=4000),
        ]
        assert audit_events(events).ok

    def test_resume_mismatch_refetches_bytes(self):
        events = [
            _session_start(),
            self._timeout(1, 2.0, accounted=1000),
            _event(2, 2.5, ev.RETRY, segment=0, attempt=1,
                   backoff_s=0.5, resume_bytes=400,
                   remaining_bytes=4000),
        ]
        report = audit_events(events)
        assert _names(report) == ["retry_accounting"]
        assert "re-fetched" in report.violations[0].message

    def test_accounted_fewer_than_delivered(self):
        events = [
            _session_start(),
            self._timeout(1, 2.0, accounted=500, delivered=1000),
            _event(2, 2.5, ev.RETRY, segment=0, attempt=1,
                   backoff_s=0.5, resume_bytes=500,
                   remaining_bytes=4000),
        ]
        report = audit_events(events)
        assert "retry_accounting" in _names(report)

    def test_retry_without_failure_flagged(self):
        events = [
            _session_start(),
            _event(1, 2.0, ev.RETRY, segment=0, attempt=1,
                   backoff_s=0.5, resume_bytes=0, remaining_bytes=4000),
        ]
        report = audit_events(events)
        assert _names(report) == ["retry_accounting"]

    def test_degradation_resolves_failure(self):
        events = [
            _session_start(),
            self._timeout(1, 2.0),
            _event(2, 2.5, ev.DEGRADED, segment=0, mode="floor",
                   attempts=3, wasted_bytes=1000, to_quality=0),
        ]
        assert audit_events(events).ok

    def test_degraded_unknown_mode_flagged(self):
        events = [
            _session_start(),
            self._timeout(1, 2.0),
            _event(2, 2.5, ev.DEGRADED, segment=0, mode="panic",
                   attempts=3, wasted_bytes=1000),
        ]
        report = audit_events(events)
        assert "retry_accounting" in _names(report)


# ---------------------------------------------------------------------------
# Reporting surface.
# ---------------------------------------------------------------------------
class TestReporting:
    def test_catalog_covers_eleven_invariants(self):
        assert len(INVARIANTS) == 11
        assert "shared_link_conservation" in INVARIANTS
        assert "retry_accounting" in INVARIANTS
        assert "stall_attribution" in INVARIANTS

    def test_violation_string_pins_event(self):
        events = [
            _session_start(),
            _event(1, 1.5, ev.TRANSPORT_ROUND, round=1, rtt=0.05,
                   offered=20, dropped=0, cwnd=10.0),
        ]
        report = audit_events(events)
        text = format_report(report)
        assert text.startswith("FAIL: 1 violation(s) in 2 events")
        assert "[cwnd_compliance] event #1 (seq 1, t=1.500000s)" in text

    def test_clean_report_format(self):
        report = audit_events([_session_start()])
        assert format_report(report) == (
            "ok: 1 events, 11 invariants checked, 0 violations"
        )

    def test_incremental_feed_matches_batch(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.TRANSPORT_ROUND, round=1, rtt=0.05,
                   offered=20, dropped=0, cwnd=10.0),
        ]
        auditor = TraceAuditor()
        for event in events:
            auditor.feed(event)
        incremental = auditor.finalize()
        batch = audit_events(events)
        assert _names(incremental) == _names(batch)
        assert incremental.events == batch.events == 2


# ---------------------------------------------------------------------------
# Clean sessions: real traces audit green on both backends.
# ---------------------------------------------------------------------------
def _run_traced(prepared, backend: str, abr_name: str = "abr_star",
                **config_kwargs):
    tracer = Tracer()
    abr = make_abr(abr_name, prepared=prepared)
    config = SessionConfig(buffer_segments=2, transport_backend=backend,
                           **config_kwargs)
    session = StreamingSession(
        prepared, abr, get_trace("verizon", seed=0), config, tracer=tracer,
    )
    session.run()
    return tracer


@pytest.mark.parametrize("backend", ["round", "packet"])
def test_clean_session_audits_green(tiny_prepared, backend):
    tracer = _run_traced(tiny_prepared, backend)
    report = audit_events(list(tracer))
    assert report.ok, format_report(report)
    assert report.events == len(tracer)


@pytest.mark.parametrize("abr_name,pr", [
    ("bola", False), ("beta", False), ("beta", True), ("abr_star", False),
])
def test_clean_session_other_abrs(tiny_prepared, abr_name, pr):
    tracer = _run_traced(tiny_prepared, "round", abr_name=abr_name,
                         partially_reliable=pr)
    report = audit_events(list(tracer))
    assert report.ok, format_report(report)


def test_inline_observer_audits_despite_eviction(tiny_prepared):
    # A tiny ring buffer evicts most events; the observer still sees all
    # of them, so the inline audit equals the post-hoc one.
    auditor = TraceAuditor()
    tracer = Tracer(capacity=16, observers=[auditor.feed])
    abr = make_abr("abr_star", prepared=tiny_prepared)
    session = StreamingSession(
        tiny_prepared, abr, get_trace("verizon", seed=0),
        SessionConfig(buffer_segments=2), tracer=tracer,
    )
    session.run()
    report = auditor.finalize()
    assert report.ok, format_report(report)
    assert report.events > len(tracer)  # buffer really did evict


# ---------------------------------------------------------------------------
# CLI: repro trace --check.
# ---------------------------------------------------------------------------
def _write_jsonl(path, events):
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(event.to_json() + "\n")


def test_cli_trace_check_clean(tiny_prepared, tmp_path, capsys):
    from repro.cli import main

    tracer = _run_traced(tiny_prepared, "round")
    path = tmp_path / "clean.jsonl"
    tracer.write_jsonl(str(path))
    assert main(["trace", str(path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_cli_trace_check_corrupted(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "corrupt.jsonl"
    _write_jsonl(path, [
        _session_start(),
        _event(1, 1.0, ev.TRANSPORT_ROUND, round=1, rtt=0.05,
               offered=20, dropped=0, cwnd=10.0),
    ])
    assert main(["trace", str(path), "--check"]) == 1
    out = capsys.readouterr().out
    assert "cwnd_compliance" in out


def test_cli_trace_check_json(tmp_path, capsys):
    import json

    from repro.cli import main

    path = tmp_path / "corrupt.jsonl"
    _write_jsonl(path, [
        _session_start(),
        _event(1, 1.0, ev.BUFFER_SAMPLE, segment=0, level_s=-1.0,
               capacity_s=4.0),
    ])
    assert main(["--json", "trace", str(path), "--check"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["violations"][0]["invariant"] == "buffer_continuity"
    assert payload["violations"][0]["index"] == 1
