"""Tests for the network substrate: clock, traces, link, cross traffic."""

import numpy as np
import pytest

from repro.network.clock import Clock
from repro.network.crosstraffic import (
    CrossTrafficConfig,
    cross_traffic_available,
    generate_cross_demand,
)
from repro.network.link import BottleneckLink
from repro.network.traces import (
    NetworkTrace,
    att_trace,
    constant_trace,
    fcc_trace,
    get_trace,
    riiser_3g_corpus,
    step_trace,
    threeg_trace,
    tmobile_trace,
    verizon_trace,
    wild_trace,
)


class TestClock:
    def test_advance(self):
        clock = Clock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            Clock().advance(-1.0)


class TestTrace:
    def test_constant(self):
        trace = constant_trace(10.5, duration=10)
        assert trace.bandwidth_mbps(0) == 10.5
        assert trace.bandwidth_mbps(9.9) == 10.5
        assert trace.bandwidth_bps(3) == pytest.approx(10.5e6)

    def test_step(self):
        trace = step_trace(before_mbps=10.75, after_mbps=10.5, step_at_s=70)
        assert trace.bandwidth_mbps(69) == pytest.approx(10.75)
        assert trace.bandwidth_mbps(71) == pytest.approx(10.5)

    def test_looping(self):
        trace = NetworkTrace("t", np.array([1.0, 2.0, 3.0]))
        assert trace.bandwidth_mbps(4.5) == 2.0  # wraps to index 1

    def test_shift(self):
        trace = NetworkTrace("t", np.array([1.0, 2.0, 3.0]))
        shifted = trace.shifted(1.0)
        assert shifted.bandwidth_mbps(0) == 2.0
        # Shifting is composable.
        assert shifted.shifted(1.0).bandwidth_mbps(0) == 3.0
        # The original is untouched.
        assert trace.bandwidth_mbps(0) == 1.0

    def test_offset_to_mean(self):
        trace = NetworkTrace("t", np.array([1.0, 3.0]))
        scaled = trace.offset_to_mean(10.0)
        assert scaled.mean_mbps() == pytest.approx(10.0)
        assert scaled.std_mbps() == pytest.approx(trace.std_mbps())

    def test_offset_floors_at_positive(self):
        trace = NetworkTrace("t", np.array([0.0, 100.0]))
        scaled = trace.offset_to_mean(1.0)
        assert (scaled.samples_mbps > 0).all()

    def test_rejects_negative_samples(self):
        with pytest.raises(ValueError):
            NetworkTrace("t", np.array([1.0, -1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            NetworkTrace("t", np.array([]))


class TestTraceCatalog:
    @pytest.mark.parametrize(
        "factory,std_lo,std_hi",
        [
            (tmobile_trace, 6.0, 13.0),
            (verizon_trace, 5.0, 12.0),
            (att_trace, 1.5, 5.0),
            (threeg_trace, 0.4, 2.5),
            (fcc_trace, 1.0, 4.0),
        ],
    )
    def test_statistics_match_paper_regime(self, factory, std_lo, std_hi):
        trace = factory()
        assert trace.mean_mbps() == pytest.approx(10.0, abs=0.3)
        assert std_lo <= trace.std_mbps() <= std_hi

    def test_deterministic_per_seed(self):
        assert np.array_equal(
            tmobile_trace(seed=3).samples_mbps,
            tmobile_trace(seed=3).samples_mbps,
        )
        assert not np.array_equal(
            tmobile_trace(seed=3).samples_mbps,
            tmobile_trace(seed=4).samples_mbps,
        )

    def test_wild_trace_has_headroom(self):
        trace = wild_trace()
        assert trace.mean_mbps() > 10.0

    def test_get_trace_names(self):
        assert get_trace("tmobile").name == "tmobile"
        assert get_trace("constant:12.5").bandwidth_mbps(0) == 12.5
        assert get_trace("step").bandwidth_mbps(0) == pytest.approx(10.75)
        with pytest.raises(KeyError):
            get_trace("nosuch")

    def test_riiser_corpus(self):
        corpus = riiser_3g_corpus(count=10)
        assert len(corpus) == 10
        means = [t.mean_mbps() for t in corpus]
        assert all(0.3 < m < 6.0 for m in means)  # low-bandwidth commutes
        assert len(set(np.round(means, 3))) > 5  # traces differ


class TestLink:
    def test_delivers_within_capacity(self):
        link = BottleneckLink(constant_trace(10.0), queue_packets=32)
        outcome = link.offer_round(0.0, packets=10)
        assert outcome.delivered_packets == 10
        assert outcome.dropped_packets == 0

    def test_conservation(self):
        link = BottleneckLink(constant_trace(1.0), queue_packets=8)
        for burst in (5, 50, 500):
            outcome = link.offer_round(0.0, burst)
            assert outcome.delivered_packets + outcome.dropped_packets == burst

    def test_overflow_tail_drops(self):
        link = BottleneckLink(constant_trace(1.0), queue_packets=4)
        outcome = link.offer_round(0.0, packets=200)
        assert outcome.dropped_packets > 0

    def test_queue_bounded(self):
        link = BottleneckLink(constant_trace(1.0), queue_packets=4)
        for _ in range(10):
            link.offer_round(0.0, packets=100)
            assert link.queue_bytes <= 4 * link.mtu + 1e-9

    def test_queue_raises_rtt(self):
        link = BottleneckLink(constant_trace(5.0), queue_packets=64)
        base = link.current_rtt(0.0)
        link.offer_round(0.0, packets=60)
        assert link.current_rtt(0.0) > base

    def test_drain_empties_queue(self):
        link = BottleneckLink(constant_trace(5.0), queue_packets=64)
        link.offer_round(0.0, packets=60)
        link.drain(0.0, dt=10.0)
        assert link.queue_bytes == 0.0

    def test_bdp_sizing(self):
        link = BottleneckLink(constant_trace(10.0), queue_packets=None)
        bdp_packets = 10e6 * 0.060 / 8 / link.mtu
        assert link.queue_packets == int(1.25 * bdp_packets)

    def test_cross_traffic_reduces_availability(self):
        demand = NetworkTrace("x", np.full(10, 8.0))
        with_cross = BottleneckLink(
            constant_trace(20.0, duration=10), cross_demand=demand
        )
        without = BottleneckLink(constant_trace(20.0, duration=10))
        assert with_cross.available_bps(0) < without.available_bps(0)
        assert with_cross.available_bps(0) == pytest.approx(12e6)

    def test_fairness_floor(self):
        demand = NetworkTrace("x", np.full(10, 25.0))  # overload
        link = BottleneckLink(
            constant_trace(20.0, duration=10),
            cross_demand=demand,
            fairness_floor=0.25,
        )
        assert link.available_bps(0) == pytest.approx(5e6)

    def test_negative_burst_rejected(self):
        link = BottleneckLink(constant_trace(10.0))
        with pytest.raises(ValueError):
            link.offer_round(0.0, -1)


class TestCrossTraffic:
    def test_mean_demand_near_target(self):
        config = CrossTrafficConfig(target_mbps=10.0, seed=1)
        demand = generate_cross_demand(config, duration=2000)
        # Heavy-tailed flow sizes make the realized mean noisy even over
        # 2000 s; it should land in the right ballpark.
        assert demand.mean_mbps() == pytest.approx(10.0, rel=0.4)

    def test_bursty_not_constant(self):
        config = CrossTrafficConfig(target_mbps=15.0, seed=2)
        demand = generate_cross_demand(config, duration=500)
        assert demand.std_mbps() > 1.0

    def test_demand_bounded_by_link(self):
        config = CrossTrafficConfig(target_mbps=18.0, link_mbps=20.0, seed=3)
        demand = generate_cross_demand(config, duration=300)
        assert demand.samples_mbps.max() <= 20.0 + 1e-9

    def test_available_floor(self):
        config = CrossTrafficConfig(target_mbps=19.0, link_mbps=20.0, seed=4)
        demand = generate_cross_demand(config, duration=100)
        available = cross_traffic_available(20.0, demand, fairness_floor=0.25)
        assert available.samples_mbps.min() >= 5.0 - 1e-9

    def test_deterministic(self):
        config = CrossTrafficConfig(target_mbps=10.0, seed=7)
        a = generate_cross_demand(config, duration=100)
        b = generate_cross_demand(config, duration=100)
        assert np.array_equal(a.samples_mbps, b.samples_mbps)
