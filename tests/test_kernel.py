"""Discrete-event kernel: clock hardening, scheduler, processes, drive."""

from __future__ import annotations

import math

import pytest

from repro.network.clock import Clock
from repro.network.events import EventScheduler, SimKernel, Waiter, drive


# ---------------------------------------------------------------------------
# Clock hardening.
# ---------------------------------------------------------------------------
def test_clock_advances():
    clock = Clock()
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.0) == 1.5
    assert clock.now == 1.5


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_clock_rejects_non_finite(bad):
    clock = Clock()
    with pytest.raises(ValueError, match="non-finite"):
        clock.advance(bad)
    assert clock.now == 0.0


def test_clock_rejects_negative():
    clock = Clock(5.0)
    with pytest.raises(ValueError):
        clock.advance(-0.1)
    assert clock.now == 5.0


# ---------------------------------------------------------------------------
# EventScheduler guards.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_schedule_rejects_non_finite_delay(bad):
    scheduler = EventScheduler()
    with pytest.raises(ValueError, match="non-finite"):
        scheduler.schedule(bad, lambda: None)


def test_schedule_rejects_negative_delay():
    scheduler = EventScheduler()
    with pytest.raises(ValueError, match="in the past"):
        scheduler.schedule(-1.0, lambda: None)


def test_step_refuses_event_behind_kernel_time():
    scheduler = EventScheduler()
    scheduler.schedule(0.5, lambda: None)
    scheduler.now = 2.0  # simulate a corrupted/rewound loop
    with pytest.raises(RuntimeError, match="scheduled in the past"):
        scheduler.step()


def test_cancel_skips_event():
    scheduler = EventScheduler()
    ran = []
    event_id = scheduler.schedule(1.0, lambda: ran.append("a"))
    scheduler.schedule(2.0, lambda: ran.append("b"))
    scheduler.cancel(event_id)
    scheduler.run_until(lambda: False)
    assert ran == ["b"]
    assert scheduler.now == 2.0


# ---------------------------------------------------------------------------
# Waiter semantics.
# ---------------------------------------------------------------------------
def test_waiter_wake_is_idempotent():
    waiter = Waiter()
    calls = []
    waiter.on_wake(lambda: calls.append(1))
    waiter.wake()
    waiter.wake()
    assert waiter.fired
    assert calls == [1]


def test_waiter_on_wake_after_fire_runs_immediately():
    waiter = Waiter()
    waiter.wake()
    calls = []
    waiter.on_wake(lambda: calls.append(1))
    assert calls == [1]


# ---------------------------------------------------------------------------
# SimKernel processes.
# ---------------------------------------------------------------------------
def test_spawn_returns_value_through_waiter():
    kernel = SimKernel()

    def process():
        yield 1.0
        return "result"

    done = kernel.spawn(process())
    assert not done.fired
    kernel.run()
    assert done.fired
    assert done.value == "result"
    assert kernel.now == 1.0


def test_kernel_syncs_clock_before_every_callback():
    kernel = SimKernel()
    seen = []

    def process():
        seen.append(kernel.clock.now)
        yield 1.5
        seen.append(kernel.clock.now)
        yield 0.25
        seen.append(kernel.clock.now)

    kernel.spawn(process())
    kernel.run()
    assert seen == [0.0, 1.5, 1.75]
    assert kernel.clock.now == kernel.now == 1.75


def test_spawn_order_breaks_ties_deterministically():
    kernel = SimKernel()
    order = []

    def process(label):
        for _ in range(3):
            order.append((kernel.now, label))
            yield 1.0

    kernel.spawn(process("a"))
    kernel.spawn(process("b"))
    kernel.run()
    assert order == [
        (0.0, "a"), (0.0, "b"),
        (1.0, "a"), (1.0, "b"),
        (2.0, "a"), (2.0, "b"),
    ]


def test_spawn_delay_offsets_start():
    kernel = SimKernel()
    starts = []

    def process():
        starts.append(kernel.now)
        yield 1.0

    kernel.spawn(process(), delay=2.5)
    kernel.run()
    assert starts == [2.5]


def test_process_waits_on_waiter():
    kernel = SimKernel()
    gate = Waiter()

    def opener():
        yield 3.0
        gate.value = "opened"
        gate.wake()

    def waiter_process():
        got = yield gate
        # The yield expression itself carries no value; read the Waiter.
        assert got is None
        return (kernel.now, gate.value)

    done = kernel.spawn(waiter_process())
    kernel.spawn(opener())
    kernel.run()
    assert done.value == (3.0, "opened")


# ---------------------------------------------------------------------------
# Batch operations: schedule_many / spawn_many / run_until_all.
# ---------------------------------------------------------------------------
def _varied(kernel, log, label, delays):
    """A process ticking through ``delays``, logging each resume."""
    for delay in delays:
        log.append((kernel.now, label))
        yield delay


def test_schedule_many_matches_sequential_schedule_order():
    batched = EventScheduler()
    serial = EventScheduler()
    out_batched, out_serial = [], []
    callbacks_b = [
        (lambda i=i: out_batched.append(i)) for i in range(20)
    ]
    callbacks_s = [
        (lambda i=i: out_serial.append(i)) for i in range(20)
    ]
    # Interleave with pre-existing events at the same instant on both.
    batched.schedule(1.0, lambda: out_batched.append("pre"))
    serial.schedule(1.0, lambda: out_serial.append("pre"))
    batched.schedule_many(1.0, callbacks_b)
    for cb in callbacks_s:
        serial.schedule(1.0, cb)
    batched.run_until(lambda: False)
    serial.run_until(lambda: False)
    assert out_batched == out_serial == ["pre"] + list(range(20))


def test_schedule_many_returns_monotonic_event_ids():
    scheduler = EventScheduler()
    ids = scheduler.schedule_many(0.5, [lambda: None] * 5)
    assert ids == sorted(ids) and len(set(ids)) == 5
    # Cancellation works on batch-scheduled events too.
    fired = []
    scheduler2 = EventScheduler()
    ids2 = scheduler2.schedule_many(
        0.5, [(lambda i=i: fired.append(i)) for i in range(3)]
    )
    scheduler2.cancel(ids2[1])
    scheduler2.run_until(lambda: False)
    assert fired == [0, 2]


@pytest.mark.parametrize("bad", [math.nan, math.inf, -0.5])
def test_schedule_many_rejects_bad_delay(bad):
    scheduler = EventScheduler()
    with pytest.raises(ValueError):
        scheduler.schedule_many(bad, [lambda: None])


def test_spawn_many_matches_spawn_loop_byte_for_byte():
    def population(kernel, log):
        return [
            _varied(kernel, log, label, delays)
            for label, delays in (
                ("a", [1.0, 0.5, 0.5]),
                ("b", [0.5, 0.5, 1.0]),
                ("c", [2.0]),
                ("d", [0.25, 0.25, 0.25, 0.25]),
            )
        ]

    k_serial, log_serial = SimKernel(), []
    waiters_serial = [
        k_serial.spawn(p) for p in population(k_serial, log_serial)
    ]
    k_serial.run()

    k_batch, log_batch = SimKernel(), []
    waiters_batch = k_batch.spawn_many(population(k_batch, log_batch))
    k_batch.run()

    assert log_batch == log_serial
    assert k_batch.now == k_serial.now
    assert len(waiters_batch) == len(waiters_serial) == 4
    assert all(w.fired for w in waiters_batch)


def test_spawn_many_honours_delay():
    kernel = SimKernel()
    starts = []

    def process(label):
        starts.append((kernel.now, label))
        yield 1.0

    kernel.spawn_many([process("a"), process("b")], delay=2.5)
    kernel.run()
    assert starts == [(2.5, "a"), (2.5, "b")]


def test_run_until_all_matches_predicate_run():
    def population(kernel, log):
        return [
            _varied(kernel, log, label, [0.5] * (i + 1))
            for i, label in enumerate("abc")
        ]

    k_pred, log_pred = SimKernel(), []
    waiters_pred = k_pred.spawn_many(population(k_pred, log_pred))
    # Keep an event in the heap beyond the last session finish, so the
    # stop condition (not heap exhaustion) ends both runs.
    k_pred.schedule(100.0, lambda: log_pred.append("late"))
    k_pred.run_until(lambda: all(w.fired for w in waiters_pred))

    k_all, log_all = SimKernel(), []
    waiters_all = k_all.spawn_many(population(k_all, log_all))
    k_all.schedule(100.0, lambda: log_all.append("late"))
    k_all.run_until_all(waiters_all)

    assert log_all == log_pred
    assert "late" not in log_all
    assert k_all.now == k_pred.now


def test_run_until_all_skips_already_fired_waiters():
    kernel = SimKernel()
    fired = Waiter()
    fired.wake()
    # All waiters already fired: returns without stepping.
    kernel.schedule(1.0, lambda: None)
    kernel.run_until_all([fired])
    assert kernel.now == 0.0

    def process():
        yield 1.0

    pending = kernel.spawn(process())
    kernel.run_until_all([fired, pending])
    assert pending.fired


def test_run_until_all_event_budget_guard():
    kernel = SimKernel()

    def livelock():
        while True:
            yield 0.1

    kernel.spawn(livelock())
    never = Waiter()
    with pytest.raises(RuntimeError, match="budget"):
        kernel.run_until_all([never], max_events=100)


# ---------------------------------------------------------------------------
# drive(): the legacy blocking execution mode.
# ---------------------------------------------------------------------------
def test_drive_advances_clock_on_float_yields():
    clock = Clock()

    def process():
        yield 0.5
        yield 0.25
        return "done"

    assert drive(process(), clock) == "done"
    assert clock.now == 0.75


def test_drive_runs_scheduler_for_waiters():
    clock = Clock()
    scheduler = EventScheduler()
    waiter = Waiter()
    scheduler.schedule(2.0, waiter.wake)

    def process():
        yield waiter
        return "woken"

    assert drive(process(), clock, scheduler=scheduler) == "woken"
    assert clock.now == 2.0


def test_drive_without_scheduler_rejects_waiter():
    clock = Clock()

    def process():
        yield Waiter()

    with pytest.raises(RuntimeError, match="no\\s+scheduler"):
        drive(process(), clock)
