"""Discrete-event kernel: clock hardening, scheduler, processes, drive."""

from __future__ import annotations

import math

import pytest

from repro.network.clock import Clock
from repro.network.events import EventScheduler, SimKernel, Waiter, drive


# ---------------------------------------------------------------------------
# Clock hardening.
# ---------------------------------------------------------------------------
def test_clock_advances():
    clock = Clock()
    assert clock.advance(1.5) == 1.5
    assert clock.advance(0.0) == 1.5
    assert clock.now == 1.5


@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_clock_rejects_non_finite(bad):
    clock = Clock()
    with pytest.raises(ValueError, match="non-finite"):
        clock.advance(bad)
    assert clock.now == 0.0


def test_clock_rejects_negative():
    clock = Clock(5.0)
    with pytest.raises(ValueError):
        clock.advance(-0.1)
    assert clock.now == 5.0


# ---------------------------------------------------------------------------
# EventScheduler guards.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
def test_schedule_rejects_non_finite_delay(bad):
    scheduler = EventScheduler()
    with pytest.raises(ValueError, match="non-finite"):
        scheduler.schedule(bad, lambda: None)


def test_schedule_rejects_negative_delay():
    scheduler = EventScheduler()
    with pytest.raises(ValueError, match="in the past"):
        scheduler.schedule(-1.0, lambda: None)


def test_step_refuses_event_behind_kernel_time():
    scheduler = EventScheduler()
    scheduler.schedule(0.5, lambda: None)
    scheduler.now = 2.0  # simulate a corrupted/rewound loop
    with pytest.raises(RuntimeError, match="scheduled in the past"):
        scheduler.step()


def test_cancel_skips_event():
    scheduler = EventScheduler()
    ran = []
    event_id = scheduler.schedule(1.0, lambda: ran.append("a"))
    scheduler.schedule(2.0, lambda: ran.append("b"))
    scheduler.cancel(event_id)
    scheduler.run_until(lambda: False)
    assert ran == ["b"]
    assert scheduler.now == 2.0


# ---------------------------------------------------------------------------
# Waiter semantics.
# ---------------------------------------------------------------------------
def test_waiter_wake_is_idempotent():
    waiter = Waiter()
    calls = []
    waiter.on_wake(lambda: calls.append(1))
    waiter.wake()
    waiter.wake()
    assert waiter.fired
    assert calls == [1]


def test_waiter_on_wake_after_fire_runs_immediately():
    waiter = Waiter()
    waiter.wake()
    calls = []
    waiter.on_wake(lambda: calls.append(1))
    assert calls == [1]


# ---------------------------------------------------------------------------
# SimKernel processes.
# ---------------------------------------------------------------------------
def test_spawn_returns_value_through_waiter():
    kernel = SimKernel()

    def process():
        yield 1.0
        return "result"

    done = kernel.spawn(process())
    assert not done.fired
    kernel.run()
    assert done.fired
    assert done.value == "result"
    assert kernel.now == 1.0


def test_kernel_syncs_clock_before_every_callback():
    kernel = SimKernel()
    seen = []

    def process():
        seen.append(kernel.clock.now)
        yield 1.5
        seen.append(kernel.clock.now)
        yield 0.25
        seen.append(kernel.clock.now)

    kernel.spawn(process())
    kernel.run()
    assert seen == [0.0, 1.5, 1.75]
    assert kernel.clock.now == kernel.now == 1.75


def test_spawn_order_breaks_ties_deterministically():
    kernel = SimKernel()
    order = []

    def process(label):
        for _ in range(3):
            order.append((kernel.now, label))
            yield 1.0

    kernel.spawn(process("a"))
    kernel.spawn(process("b"))
    kernel.run()
    assert order == [
        (0.0, "a"), (0.0, "b"),
        (1.0, "a"), (1.0, "b"),
        (2.0, "a"), (2.0, "b"),
    ]


def test_spawn_delay_offsets_start():
    kernel = SimKernel()
    starts = []

    def process():
        starts.append(kernel.now)
        yield 1.0

    kernel.spawn(process(), delay=2.5)
    kernel.run()
    assert starts == [2.5]


def test_process_waits_on_waiter():
    kernel = SimKernel()
    gate = Waiter()

    def opener():
        yield 3.0
        gate.value = "opened"
        gate.wake()

    def waiter_process():
        got = yield gate
        # The yield expression itself carries no value; read the Waiter.
        assert got is None
        return (kernel.now, gate.value)

    done = kernel.spawn(waiter_process())
    kernel.spawn(opener())
    kernel.run()
    assert done.value == (3.0, "opened")


# ---------------------------------------------------------------------------
# drive(): the legacy blocking execution mode.
# ---------------------------------------------------------------------------
def test_drive_advances_clock_on_float_yields():
    clock = Clock()

    def process():
        yield 0.5
        yield 0.25
        return "done"

    assert drive(process(), clock) == "done"
    assert clock.now == 0.75


def test_drive_runs_scheduler_for_waiters():
    clock = Clock()
    scheduler = EventScheduler()
    waiter = Waiter()
    scheduler.schedule(2.0, waiter.wake)

    def process():
        yield waiter
        return "woken"

    assert drive(process(), clock, scheduler=scheduler) == "woken"
    assert clock.now == 2.0


def test_drive_without_scheduler_rejects_waiter():
    clock = Clock()

    def process():
        yield Waiter()

    with pytest.raises(RuntimeError, match="no\\s+scheduler"):
        drive(process(), clock)
