"""Causal stall attribution: the partition law under adversarial input.

Every stall second and every quality drop must land in exactly one
cause bucket, and the per-cause sums must reconstruct the session's
totals — on hand-built streams, on hypothesis-generated synthetic
sessions, and on the chaos corpus.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.chaos import run_chaos
from repro.obs import events as ev
from repro.obs.attribution import (
    CAUSE_DESCRIPTIONS,
    CAUSES,
    AttributionResult,
    FleetAttributor,
    SessionAttributor,
    attribute_events,
    format_attribution,
)
from repro.obs.events import TraceEvent


def _event(seq: int, t: float, type_: str, **fields) -> TraceEvent:
    event = TraceEvent(seq=seq, t=t, type=type_, fields=fields)
    event.validate()
    return event


def _session_start(seq: int = 0, sid=None) -> TraceEvent:
    fields = dict(
        video="tinytest", abr="abr_star", num_segments=6,
        segment_duration=2.0, buffer_capacity_s=4.0, backend="round",
        partially_reliable=True,
    )
    if sid is not None:
        fields["session_id"] = sid
    return _event(seq, 0.0, ev.SESSION_START, **fields)


# ---------------------------------------------------------------------------
# Precedence on hand-built streams.
# ---------------------------------------------------------------------------
class TestPrecedence:
    def test_catalog_is_closed(self):
        assert set(CAUSES) == set(CAUSE_DESCRIPTIONS)
        assert CAUSES[0] == "fault"

    def test_stall_inside_fault_window_is_fault(self):
        events = [
            _session_start(),
            _event(1, 0.0, ev.FAULT_INJECTED, kind="blackout", start=4.0,
                   duration=3.0, value=0.0),
            _event(2, 5.0, ev.STALL, duration=1.0, segment=2),
        ]
        result = attribute_events(events)
        assert result.stall_seconds["fault"] == pytest.approx(1.0)
        assert result.total_stall == pytest.approx(1.0)
        assert result.ok

    def test_retry_beats_bandwidth(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.REQUEST_TIMEOUT, segment=2, attempt=1,
                   elapsed=3.0, accounted_bytes=0, delivered_bytes=0),
            _event(2, 5.0, ev.STALL, duration=1.0, segment=2),
        ]
        result = attribute_events(events)
        assert result.stall_seconds["retry"] == pytest.approx(1.0)
        assert result.ok

    def test_idle_stall_without_decision_is_overreach(self):
        events = [
            _session_start(),
            _event(1, 5.0, ev.STALL, duration=0.5, segment=-1),
        ]
        result = attribute_events(events)
        assert result.stall_seconds["abr_overreach"] == pytest.approx(0.5)
        assert result.ok

    def test_format_names_every_cause(self):
        result = attribute_events([_session_start()])
        text = format_attribution(result)
        for cause in CAUSES:
            assert cause in text
        assert "partition law holds" in text


# ---------------------------------------------------------------------------
# Result algebra.
# ---------------------------------------------------------------------------
class TestResultAlgebra:
    def test_dict_roundtrip(self):
        events = [
            _session_start(),
            _event(1, 1.0, ev.REQUEST_TIMEOUT, segment=0, attempt=1,
                   elapsed=3.0, accounted_bytes=0, delivered_bytes=0),
            _event(2, 5.0, ev.STALL, duration=2.0, segment=0),
        ]
        result = attribute_events(events)
        clone = AttributionResult.from_dict(result.to_dict())
        assert clone.to_dict() == result.to_dict()
        assert clone.ok == result.ok

    def test_merge_sums_partitions(self):
        left = attribute_events([
            _session_start(),
            _event(1, 2.0, ev.STALL, duration=1.0, segment=-1),
        ])
        right = attribute_events([
            _session_start(),
            _event(1, 1.0, ev.REQUEST_TIMEOUT, segment=0, attempt=1,
                   elapsed=3.0, accounted_bytes=0, delivered_bytes=0),
            _event(2, 5.0, ev.STALL, duration=0.5, segment=0),
        ])
        merged = AttributionResult.from_dict(left.to_dict())
        merged.merge(right)
        assert merged.total_stall == pytest.approx(1.5)
        assert merged.stall_seconds["abr_overreach"] == pytest.approx(1.0)
        assert merged.stall_seconds["retry"] == pytest.approx(0.5)
        assert merged.ok

    def test_fleet_keys_sessions(self):
        fleet = FleetAttributor()
        for event in [
            _session_start(sid="a"),
            _event(1, 2.0, ev.STALL, duration=1.0, segment=-1,
                   session_id="a"),
            _session_start(sid="b"),
            _event(1, 2.0, ev.STALL, duration=0.25, segment=-1,
                   session_id="b"),
        ]:
            fleet.feed(event)
        results = fleet.results()
        assert set(results) == {"a", "b"}
        combined = fleet.combined()
        assert combined.total_stall == pytest.approx(1.25)
        assert combined.ok


# ---------------------------------------------------------------------------
# The partition law, property-based.
# ---------------------------------------------------------------------------
_STALLS = st.lists(
    st.tuples(
        st.floats(0.01, 5.0),           # duration
        st.integers(-1, 5),             # segment
    ),
    min_size=0, max_size=12,
)
_WINDOWS = st.lists(
    st.tuples(st.floats(0.0, 30.0), st.floats(0.1, 5.0)),
    min_size=0, max_size=3,
)
_FAILED = st.sets(st.integers(0, 5), max_size=4)
_DEGRADED = st.sets(st.integers(0, 5), max_size=4)
_DECISIONS = st.dictionaries(
    st.integers(0, 5),
    st.tuples(st.floats(0.0, 8e6), st.floats(0.0, 8.0)),
    max_size=6,
)


class TestPartitionProperty:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(stalls=_STALLS, windows=_WINDOWS, failed=_FAILED,
           degraded=_DEGRADED, decisions=_DECISIONS)
    def test_causes_partition_stall_time_exactly(
        self, stalls, windows, failed, degraded, decisions
    ):
        """Whatever the stream, per-cause sums reconstruct the total."""
        attributor = SessionAttributor()
        seq = 0
        attributor.feed(_session_start())
        for start, duration in windows:
            seq += 1
            attributor.feed(_event(seq, 0.0, ev.FAULT_INJECTED,
                                   kind="blackout", start=start,
                                   duration=duration, value=0.0))
        for segment, (throughput, buffer_s) in sorted(decisions.items()):
            seq += 1
            attributor.feed(_event(
                seq, 0.5, ev.ABR_DECISION, segment=segment, quality=3,
                target_bytes=None, unreliable=True, wait_s=0.0,
                buffer_level_s=buffer_s, throughput_bps=throughput,
                expected_score=0.9,
            ))
            seq += 1
            attributor.feed(_event(
                seq, 0.5, ev.DOWNLOAD_START, segment=segment, quality=3,
                wire_bytes=750_000, attempt=1,
            ))
        for segment in sorted(failed):
            seq += 1
            attributor.feed(_event(
                seq, 1.0, ev.REQUEST_TIMEOUT, segment=segment, attempt=1,
                elapsed=3.0, accounted_bytes=0, delivered_bytes=0,
            ))
        for segment in sorted(degraded):
            seq += 1
            attributor.feed(_event(
                seq, 1.5, ev.DEGRADED, segment=segment, mode="skip",
                attempts=3, wasted_bytes=100,
            ))
        t = 2.0
        for duration, segment in stalls:
            seq += 1
            t += duration
            attributor.feed(_event(seq, t, ev.STALL, duration=duration,
                                   segment=segment))
        total = sum(duration for duration, _ in stalls)
        seq += 1
        attributor.feed(_event(
            seq, t + 1.0, ev.SESSION_END, buf_ratio=0.0,
            total_stall=total, startup_delay=0.4, mean_score=0.9,
            segments=6,
        ))
        result = attributor.result()
        assert result.ok, result.to_dict()
        assert sum(result.stall_seconds.values()) == \
            pytest.approx(total, abs=1e-9)
        assert sum(result.stall_events.values()) == len(stalls)
        assert result.total_stall_events == len(stalls)
        # Exactly one cause per stall second: the buckets are disjoint
        # by construction, so the residual is literally zero.
        assert abs(result.residual) < 1e-6


# ---------------------------------------------------------------------------
# The chaos corpus carries the partition law end to end.
# ---------------------------------------------------------------------------
class TestChaosCorpus:
    def test_attribution_holds_on_chaos_cells(self, tiny_prepared):
        rows = run_chaos(
            profiles=["mixed"], seeds=[0, 1],
            base={"video": "tinytest"},
            prepared_map={"tinytest": tiny_prepared},
            rollup=True,
        )
        for row in rows:
            assert row["audit"]["ok"], row["audit"]
            attribution = AttributionResult.from_dict(row["attribution"])
            assert attribution.ok
            # Causes reconstruct the summary's stall time: summary has
            # no stall key, but the audit checked the partition against
            # the trace's session_end, so equality to reported holds.
            assert attribution.reported_stall == pytest.approx(
                attribution.total_stall, abs=1e-6
            )
